package analysis

import (
	"strings"
	"testing"

	"instantcheck/internal/analysis/fixtureapp"
	"instantcheck/internal/racefilter"
	"instantcheck/internal/sim"
)

// loadFixtureapp loads the fixtureapp package through the analysis
// loader.
func loadFixtureapp(t *testing.T) *Package {
	t.Helper()
	loader, err := NewLoader("fixtureapp")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load("fixtureapp")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkg
}

// TestCrossCheckStatic checks the static half of the §4.1 cross-check:
// the atomicity analyzer flags exactly the Racy program's store and
// nothing in Clean, and the //icvet:ignore comment suppresses the finding
// in a normal run.
func TestCrossCheckStatic(t *testing.T) {
	pkg := loadFixtureapp(t)

	diags := RunAnalyzers(pkg, []*Analyzer{Atomicity}, RunOptions{NoSuppress: true})
	if len(diags) != 1 {
		t.Fatalf("atomicity on fixtureapp: got %d diagnostics, want exactly 1 (Racy.Worker's store): %+v", len(diags), diags)
	}
	if got := diags[0].Message; !strings.Contains(got, "p.acc") {
		t.Errorf("diagnostic does not name the shared address p.acc: %s", got)
	}

	if diags := RunAnalyzers(pkg, []*Analyzer{Atomicity}, RunOptions{}); len(diags) != 0 {
		t.Errorf("the icvet:ignore comment did not suppress the deliberate finding: %+v", diags)
	}

	// The other analyzers have nothing to say about either program.
	if diags := RunAnalyzers(pkg, []*Analyzer{DirectState, StoreKind, LockPair, IgnoreSite}, RunOptions{NoSuppress: true}); len(diags) != 0 {
		t.Errorf("unexpected findings from the other analyzers: %+v", diags)
	}
}

// TestCrossCheckDynamic checks the dynamic half: the program the static
// analyzer flags really does race (the happens-before detector reports a
// write-write race on the accumulator) and really does corrupt the
// incremental hash under the non-atomic instrumentation scheme, while the
// clean variant triggers neither.
func TestCrossCheckDynamic(t *testing.T) {
	cfg := racefilter.Config{Threads: 4, Runs: 6, BaseSeed: 1}

	races, err := racefilter.Detect(func() sim.Program { return &fixtureapp.Racy{} }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range races {
		if r.Site == "fx.acc" && r.Kind == racefilter.WriteWrite {
			found = true
		}
	}
	if !found {
		t.Errorf("detector found no write-write race on fx.acc in Racy: %+v", races)
	}

	races, err = racefilter.Detect(func() sim.Program { return &fixtureapp.Clean{} }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("detector reported races in Clean: %+v", races)
	}

	racyHashes := finalHashes(t, func() sim.Program { return &fixtureapp.Racy{} })
	if len(racyHashes) < 2 {
		t.Errorf("Racy produced a single final hash across schedules; the lost-update race never manifested")
	}
	cleanHashes := finalHashes(t, func() sim.Program { return &fixtureapp.Clean{} })
	if len(cleanHashes) != 1 {
		t.Errorf("Clean diverged under SWIncNonAtomic: %d distinct final hashes", len(cleanHashes))
	}
}

// finalHashes runs the program under SWIncNonAtomic across seeds and
// returns the set of distinct final state hashes.
func finalHashes(t *testing.T, build func() sim.Program) map[string]bool {
	t.Helper()
	set := make(map[string]bool)
	for seed := int64(0); seed < 12; seed++ {
		m := sim.NewMachine(sim.Config{
			Threads:        4,
			ScheduleSeed:   seed,
			Scheme:         sim.SWIncNonAtomic,
			SwitchInterval: 1,
		})
		res, err := m.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		set[res.FinalSH().String()] = true
	}
	return set
}
