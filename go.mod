module instantcheck

go 1.23
