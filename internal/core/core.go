// Package core implements InstantCheck itself: the determinism checker that
// runs a parallel program many times for one input under a randomized
// serializing scheduler, captures a 64-bit State Hash at every checkpoint
// (each dynamic barrier episode and the end of the run), and compares the
// hashes across runs (paper §2).
//
// If two runs produce different hashes at some checkpoint, the program is
// externally nondeterministic at that point. If all runs agree at every
// checkpoint, the program is externally deterministic within the coverage
// of the test campaign. Hash comparison has no false positives (equal
// states always hash equal) and a 2^-64 false-negative probability per
// comparison.
//
// The package also implements the paper's determinism taxonomy (Table 1) —
// bit-by-bit deterministic, deterministic after FP rounding, deterministic
// after isolating small nondeterministic structures, nondeterministic — and
// the Figure 6 instruction-count overhead model for the four evaluated
// configurations.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// Campaign configures one determinism-checking campaign: N runs of the same
// program with the same input, differing only in schedule seed.
type Campaign struct {
	// Runs is the number of test runs (the paper uses 30).
	Runs int
	// Threads is the worker thread count (the paper uses 8).
	Threads int
	// BaseScheduleSeed derives the per-run schedule seeds (seed + run index).
	BaseScheduleSeed int64
	// InputSeed fixes the program input (env-call record stream).
	InputSeed int64
	// SwitchInterval is the scheduler's mean preemption interval
	// (<= 0 selects the default).
	SwitchInterval int
	// Scheme selects the hashing scheme (default HWInc).
	Scheme sim.Scheme
	// Hasher is the location hash (nil selects ihash.Mix64).
	Hasher ihash.Hasher
	// RoundFP enables the FP round-off unit for the whole campaign.
	RoundFP bool
	// Rounding is the round-off policy (zero value selects the paper
	// default, floor to 0.001, when RoundFP is set).
	Rounding fpround.Policy
	// Ignore deletes explicitly-specified structures from every hash.
	Ignore *sim.IgnoreSet
	// SnapshotDifferingRuns re-executes the first two differing runs with
	// full state capture at the first differing checkpoint, for the
	// state-diff debugging tool (§2.3). It costs two extra runs.
	SnapshotDifferingRuns bool
	// TraverseDelta selects the traversal scheme's checkpoint strategy
	// for every run (dirty-page delta hashing by default; see
	// sim.TraverseDeltaMode). Ignored by the incremental schemes.
	TraverseDelta sim.TraverseDeltaMode
	// StoreBufferWords sizes the incremental schemes' per-thread store
	// buffer for every run (0 selects the auto default, negative disables;
	// see sim.Config.StoreBufferWords). Ignored by the traversal scheme
	// and by SWIncNonAtomic.
	StoreBufferWords int
	// Parallelism is the number of runs executed concurrently. The runs of
	// a campaign are independent given the recording run's replay logs
	// (§5), so the recording run executes first and alone, then up to
	// Parallelism replay runs proceed at a time, each on a private clone of
	// the logs. The merged report does not depend on completion order —
	// the paper's order-independence property at run granularity. Values
	// below 1 (including the zero value) select sequential execution.
	Parallelism int
}

// withDefaults fills zero fields with the paper's defaults and rejects
// configurations that are nonsensical rather than merely unset.
func (c Campaign) withDefaults() (Campaign, error) {
	if c.Runs == 0 {
		c.Runs = 30
	}
	if c.Runs <= 0 {
		return c, fmt.Errorf("core: campaign Runs = %d; want > 0", c.Runs)
	}
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.Threads < 0 {
		return c, fmt.Errorf("core: campaign Threads = %d; want > 0", c.Threads)
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.Scheme == sim.Native {
		c.Scheme = sim.HWInc
	}
	if c.RoundFP && !c.Rounding.Enabled() {
		c.Rounding = fpround.Default
	}
	return c, nil
}

// Builder constructs a fresh Program instance for one run. It is called
// once per run so that program-held handles reset between runs.
type Builder func() sim.Program

// CheckpointStat summarizes one checkpoint ordinal across all runs.
type CheckpointStat struct {
	// Ordinal is the checkpoint's dynamic index.
	Ordinal int
	// Label is the checkpoint label (barrier name or "end").
	Label string
	// Distribution counts runs per distinct State Hash, sorted descending:
	// [30] means fully deterministic, [16 11 3] means three distinct
	// states were observed (the D5 example of Figure 5).
	Distribution []int
	// Deterministic is true when all runs agreed.
	Deterministic bool
}

// DistKey returns the distribution as a canonical "16/11/3" string, the
// form the paper's Figures 5 and 8 plot.
func (s CheckpointStat) DistKey() string {
	parts := make([]string, len(s.Distribution))
	for i, n := range s.Distribution {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, "/")
}

// DistGroup aggregates checkpoints sharing one distribution shape — one bar
// group of Figure 5/8 ("156 checking points with distribution 16/11/3").
type DistGroup struct {
	// Distribution is the shared shape, descending.
	Distribution []int
	// Checkpoints is how many checkpoint ordinals exhibit it.
	Checkpoints int
}

// Report is the outcome of a campaign.
type Report struct {
	// Program is the checked program's name.
	Program string
	// Campaign echoes the configuration used.
	Campaign Campaign
	// Runs holds each run's result, in run order.
	Runs []*sim.Result
	// Stats summarizes each checkpoint ordinal across runs. When runs
	// disagree on the number of checkpoints (ShapeMismatch), Stats covers
	// the common prefix.
	Stats []CheckpointStat
	// DetPoints and NDetPoints count deterministic / nondeterministic
	// dynamic checking points (Table 1 columns 10–11).
	DetPoints int
	// NDetPoints counts checkpoints where at least two runs differed.
	NDetPoints int
	// DetAtEnd reports whether the final checkpoint was deterministic.
	DetAtEnd bool
	// FirstNDetRun is the 1-based index of the first run whose hash vector
	// differs from run 1's — how fast the programmer finds out (§7.2.2).
	// 0 means no nondeterminism was detected.
	FirstNDetRun int
	// ShapeMismatch is true when runs produced different checkpoint
	// counts (itself a form of nondeterminism).
	ShapeMismatch bool
	// OutputDistinct counts distinct output-stream hashes across runs
	// (1 means deterministic output, 0 means no output, §4.3).
	OutputDistinct int
	// DiffSnapshots, when Campaign.SnapshotDifferingRuns was set and
	// nondeterminism was found, holds the state-diff capture of the first
	// differing checkpoint (see FirstDiff).
	DiffSnapshots *DiffCapture
}

// Deterministic reports whether every checkpoint agreed in every run.
func (r *Report) Deterministic() bool {
	return !r.ShapeMismatch && r.NDetPoints == 0
}

// Points returns the number of dynamic checking points compared.
func (r *Report) Points() int { return len(r.Stats) }

// FirstNDetPoint returns the ordinal of the first nondeterministic
// checkpoint, or -1 if none.
func (r *Report) FirstNDetPoint() int {
	for _, s := range r.Stats {
		if !s.Deterministic {
			return s.Ordinal
		}
	}
	return -1
}

// DistGroups groups checkpoints by distribution shape, most-populous first —
// the data behind Figures 5 and 8.
func (r *Report) DistGroups() []DistGroup {
	byKey := make(map[string]*DistGroup)
	var order []string
	for _, s := range r.Stats {
		k := s.DistKey()
		g := byKey[k]
		if g == nil {
			g = &DistGroup{Distribution: s.Distribution}
			byKey[k] = g
			order = append(order, k)
		}
		g.Checkpoints++
	}
	out := make([]DistGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Checkpoints > out[j].Checkpoints })
	return out
}

// NDetDistGroups returns only the groups with more than one distinct state.
func (r *Report) NDetDistGroups() []DistGroup {
	var out []DistGroup
	for _, g := range r.DistGroups() {
		if len(g.Distribution) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// Check runs the campaign and compares hashes across runs. With
// Parallelism > 1 the replay runs execute concurrently on private clones
// of the replay logs; the report is identical to sequential execution
// whenever the replay runs stay within the recorded logs (which every
// correctly record/replayed program does — log growth means a replay run
// took a path the recording run never exercised).
func (c Campaign) Check(build Builder) (*Report, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	if !c.Scheme.Hashing() {
		return nil, fmt.Errorf("core: campaign scheme %v computes no hashes", c.Scheme)
	}
	if c.Parallelism > 1 {
		return c.checkParallel(build)
	}
	addrLog := replay.NewAddrLog()
	env := replay.NewEnv(c.InputSeed)
	rep := &Report{Campaign: c}
	for run := 0; run < c.Runs; run++ {
		res, name, err := c.runOnce(build, addrLog, env, run, nil)
		if err != nil {
			return nil, fmt.Errorf("core: run %d: %w", run+1, err)
		}
		rep.Program = name
		rep.Runs = append(rep.Runs, res)
	}
	c.summarize(rep)
	if c.SnapshotDifferingRuns && rep.FirstNDetRun > 0 {
		if err := c.captureDiff(build, rep); err != nil {
			return nil, fmt.Errorf("core: state-diff capture: %w", err)
		}
	}
	return rep, nil
}

// checkParallel is the Parallelism > 1 path of Check: one Runner, a pool
// of replay workers, and the same merge stage as the sequential path.
func (c Campaign) checkParallel(build Builder) (*Report, error) {
	r, err := c.NewRunner(build)
	if err != nil {
		return nil, err
	}
	first, err := r.Record()
	if err != nil {
		return nil, err
	}
	results := make([]*sim.Result, c.Runs)
	results[0] = first
	runs := make(chan int)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < c.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range runs {
				res, err := r.Replay(run)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				results[run] = res
			}
		}()
	}
	for run := 1; run < c.Runs; run++ {
		runs <- run
	}
	close(runs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rep := &Report{Program: r.Name(), Campaign: c, Runs: results}
	c.summarize(rep)
	if c.SnapshotDifferingRuns && rep.FirstNDetRun > 0 {
		if err := c.captureDiff(build, rep); err != nil {
			return nil, fmt.Errorf("core: state-diff capture: %w", err)
		}
	}
	return rep, nil
}

func (c Campaign) runOnce(build Builder, addrLog *replay.AddrLog, env *replay.Env, run int, snapshotAt map[int]bool) (*sim.Result, string, error) {
	prog := build()
	m := sim.NewMachine(sim.Config{
		Threads:          c.Threads,
		ScheduleSeed:     c.BaseScheduleSeed + int64(run),
		SwitchInterval:   c.SwitchInterval,
		Scheme:           c.Scheme,
		Hasher:           c.Hasher,
		Rounding:         c.Rounding,
		RoundFP:          c.RoundFP,
		AddrLog:          addrLog,
		Env:              env,
		Ignore:           c.Ignore,
		SnapshotAt:       snapshotAt,
		TraverseDelta:    c.TraverseDelta,
		StoreBufferWords: c.StoreBufferWords,
	})
	res, err := m.Run(prog)
	return res, prog.Name(), err
}

func (c Campaign) summarize(rep *Report) {
	if len(rep.Runs) == 0 {
		return
	}
	points := len(rep.Runs[0].Checkpoints)
	for _, r := range rep.Runs[1:] {
		if len(r.Checkpoints) != points {
			rep.ShapeMismatch = true
			if len(r.Checkpoints) < points {
				points = len(r.Checkpoints)
			}
		}
	}
	base := rep.Runs[0].SHVector()
	for i, r := range rep.Runs {
		if i == 0 {
			continue
		}
		if rep.FirstNDetRun != 0 {
			break
		}
		v := r.SHVector()
		if len(v) != len(base) {
			rep.FirstNDetRun = i + 1
			break
		}
		for j := range v {
			if v[j] != base[j] {
				rep.FirstNDetRun = i + 1
				break
			}
		}
	}
	outputs := make(map[string]bool)
	sawOutput := false
	for _, r := range rep.Runs {
		if r.OutputBytes > 0 {
			sawOutput = true
		}
		outputs[outputSignature(r.Outputs)] = true
	}
	if sawOutput {
		rep.OutputDistinct = len(outputs)
	}
	for ord := 0; ord < points; ord++ {
		counts := make(map[ihash.Digest]int)
		for _, r := range rep.Runs {
			counts[r.Checkpoints[ord].SH]++
		}
		dist := make([]int, 0, len(counts))
		for _, n := range counts {
			dist = append(dist, n)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(dist)))
		st := CheckpointStat{
			Ordinal:       ord,
			Label:         rep.Runs[0].Checkpoints[ord].Label,
			Distribution:  dist,
			Deterministic: len(dist) == 1,
		}
		rep.Stats = append(rep.Stats, st)
		if st.Deterministic {
			rep.DetPoints++
		} else {
			rep.NDetPoints++
		}
	}
	if points > 0 {
		rep.DetAtEnd = rep.Stats[points-1].Deterministic && !rep.ShapeMismatch
	}
	if rep.ShapeMismatch && rep.FirstNDetRun == 0 {
		rep.FirstNDetRun = 2 // differing shape is itself detected immediately
	}
}

// outputSignature canonicalizes a run's per-descriptor stream hashes so
// output determinism is judged across all descriptors (§4.3).
func outputSignature(outs map[int]sim.OutputStream) string {
	if len(outs) == 0 {
		return ""
	}
	fds := make([]int, 0, len(outs))
	for fd := range outs {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	var sb strings.Builder
	for _, fd := range fds {
		fmt.Fprintf(&sb, "%d:%016x;", fd, outs[fd].Hash)
	}
	return sb.String()
}
