package ihash

import "testing"

// BenchmarkHashWord measures the location hash — the operation the MHM
// hardware performs per store (twice: old and new value).
func BenchmarkHashWord(b *testing.B) {
	for _, h := range hashers {
		h := h
		b.Run(h.Name(), func(b *testing.B) {
			var sink Digest
			for i := 0; i < b.N; i++ {
				sink = sink.Combine(h.HashWord(uint64(i)*8, uint64(i)*0x9e37))
			}
			benchSink = sink
		})
	}
}

// BenchmarkAccumulatorWrite measures the full incremental store update
// (⊖old ⊕new) — the per-store cost of SW-InstantCheck_Inc in this runtime.
func BenchmarkAccumulatorWrite(b *testing.B) {
	a := NewAccumulator(nil)
	for i := 0; i < b.N; i++ {
		a.Write(uint64(i&1023)*8, uint64(i), uint64(i+1))
	}
	benchSink = a.Value()
}

var benchSink Digest
