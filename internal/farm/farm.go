// Package farm implements checkfarm: a long-running determinism-checking
// service on top of the core checker. The paper's workflow — run the same
// program on the same input many times and compare per-checkpoint State
// Hashes (§2) — is an embarrassingly parallel campaign, and the farm turns
// it into infrastructure:
//
//   - a job queue accepts check campaigns (workload + options), schedules
//     them FIFO, tracks per-job status and supports cancellation;
//   - a worker pool exploits run-level independence: each of a campaign's
//     runs is reproducible from (schedule seed, replay logs) alone (§5),
//     so after the recording run, replay runs execute concurrently and a
//     merge stage folds the per-run hash vectors into one report — the
//     hash combine is commutative, so the report is identical no matter
//     how the runs interleave (the paper's order-independence property at
//     run granularity);
//   - a persistent hash-log store appends one line per (job, run,
//     checkpoint, SH) to an on-disk log, so a restarted daemon resumes
//     partially-complete campaigns where they stopped, and hash logs from
//     two hosts can be diffed — §6.3's hash-assisted replay log made
//     durable;
//   - an HTTP JSON API (submit / status / report / hash-log stream /
//     compare) serves the whole thing; cmd/checkd is the daemon and the
//     Client type plus `instantcheck remote` are the callers.
package farm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"instantcheck/internal/apps"
	"instantcheck/internal/core"
	"instantcheck/internal/explore"
	"instantcheck/internal/ihash"
	"instantcheck/internal/sim"
)

// JobID identifies one submitted campaign, unique within a store.
type JobID string

// JobSpec is the wire-format description of a check campaign: everything
// needed to reconstruct the core.Campaign and the workload builder on any
// host. All fields except App are optional; zero values select the paper's
// defaults (30 runs, 8 threads, HW-InstantCheck_Inc, the mix64 hasher).
type JobSpec struct {
	// App names the workload to check (one of the 17 evaluation kernels).
	App string `json:"app"`
	// Runs is the campaign's run count.
	Runs int `json:"runs,omitempty"`
	// Threads is the worker thread count per run.
	Threads int `json:"threads,omitempty"`
	// Parallelism is the number of replay runs executed concurrently.
	// Zero lets the daemon choose its configured default.
	Parallelism int `json:"parallelism,omitempty"`
	// Seed is the base schedule seed; run i uses Seed + i.
	Seed int64 `json:"seed,omitempty"`
	// InputSeed fixes the replayed input streams.
	InputSeed int64 `json:"input_seed,omitempty"`
	// SwitchInterval is the scheduler's mean preemption interval.
	SwitchInterval int `json:"switch_interval,omitempty"`
	// Scheme selects the hashing scheme: "hwinc" (default), "swinc",
	// "swinc-nonatomic" or "swtr".
	Scheme string `json:"scheme,omitempty"`
	// Hasher selects the location hash: "mix64" (default) or "crc64".
	Hasher string `json:"hasher,omitempty"`
	// RoundFP enables the FP round-off unit for the whole campaign.
	RoundFP bool `json:"round_fp,omitempty"`
	// StoreBufferWords sizes the per-thread store buffer of the
	// incremental schemes: 0 picks the auto default, negative disables
	// buffering (inline per-store hashing).
	StoreBufferWords int `json:"store_buffer_words,omitempty"`
	// Isolate applies the workload's small-structure ignore set (§2.2).
	Isolate bool `json:"isolate,omitempty"`
	// Small selects the reduced (unit-test scale) input.
	Small bool `json:"small,omitempty"`
	// Kind selects the job type: "check" (default) replays Runs schedules
	// and compares their full hash vectors; "explore" hunts for a
	// schedule-dependent divergence with a search strategy, stopping at
	// the first one (Runs becomes the search budget).
	Kind string `json:"kind,omitempty"`
	// Strategy selects the exploration strategy for explore jobs:
	// "uniform" (default), "pct", "race-directed" or "coverage".
	Strategy string `json:"strategy,omitempty"`
	// PCTDepth is the number of priority-change points for the pct
	// strategy (0 selects the default).
	PCTDepth int `json:"pct_depth,omitempty"`
	// Bug seeds the workload's Figure 7 bug ("semantic", "atomicity" or
	// "order"); the workload must host that bug kind. Valid for both job
	// kinds — a check campaign on a seeded bug measures detection, an
	// explore campaign measures runs-to-detect.
	Bug string `json:"bug,omitempty"`
}

// bugs maps wire names to seeded bug kinds.
var bugs = map[string]apps.BugKind{
	"":          apps.BugNone,
	"semantic":  apps.BugSemantic,
	"atomicity": apps.BugAtomicity,
	"order":     apps.BugOrder,
}

// schemes maps wire names to simulator schemes.
var schemes = map[string]sim.Scheme{
	"":                sim.HWInc,
	"hwinc":           sim.HWInc,
	"swinc":           sim.SWInc,
	"swinc-nonatomic": sim.SWIncNonAtomic,
	"swtr":            sim.SWTr,
}

// Resolve maps the spec to a campaign and a workload builder, validating
// every field. It is the single point where wire names become checker
// configuration, shared by the daemon, the resume path and the clients.
func (s JobSpec) Resolve() (core.Campaign, core.Builder, error) {
	app := apps.ByName(s.App)
	if app == nil {
		return core.Campaign{}, nil, fmt.Errorf("farm: unknown workload %q (have %s)",
			s.App, strings.Join(apps.Names(), ", "))
	}
	switch s.Kind {
	case "", "check":
		if s.Strategy != "" || s.PCTDepth != 0 {
			return core.Campaign{}, nil, fmt.Errorf("farm: strategy options are only valid on explore jobs (kind=explore)")
		}
	case "explore":
		if !knownStrategy(s.Strategy) {
			return core.Campaign{}, nil, fmt.Errorf("farm: unknown strategy %q (want %s)",
				s.Strategy, strings.Join(explore.StrategyNames(), ", "))
		}
	default:
		return core.Campaign{}, nil, fmt.Errorf("farm: unknown job kind %q (want check or explore)", s.Kind)
	}
	bug, ok := bugs[s.Bug]
	if !ok {
		return core.Campaign{}, nil, fmt.Errorf("farm: unknown bug %q (want semantic, atomicity or order)", s.Bug)
	}
	if bug != apps.BugNone && bug != app.HostsBug {
		return core.Campaign{}, nil, fmt.Errorf("farm: workload %q does not host a %s bug", s.App, bug)
	}
	scheme, ok := schemes[s.Scheme]
	if !ok {
		return core.Campaign{}, nil, fmt.Errorf("farm: unknown scheme %q (want hwinc, swinc, swinc-nonatomic or swtr)", s.Scheme)
	}
	var hasher ihash.Hasher
	switch s.Hasher {
	case "", "mix64":
		hasher = nil // campaign default
	case "crc64":
		hasher = ihash.CRC64{}
	default:
		return core.Campaign{}, nil, fmt.Errorf("farm: unknown hasher %q (want mix64 or crc64)", s.Hasher)
	}
	var ignore *sim.IgnoreSet
	if s.Isolate {
		ignore = app.IgnoreSet()
	}
	camp, err := core.Campaign{
		Runs:             s.Runs,
		Threads:          s.Threads,
		Parallelism:      s.Parallelism,
		BaseScheduleSeed: s.Seed,
		InputSeed:        s.InputSeed,
		SwitchInterval:   s.SwitchInterval,
		Scheme:           scheme,
		Hasher:           hasher,
		RoundFP:          s.RoundFP,
		Ignore:           ignore,
		StoreBufferWords: s.StoreBufferWords,
	}.WithDefaults()
	if err != nil {
		return core.Campaign{}, nil, err
	}
	build := app.Builder(apps.Options{Threads: camp.Threads, Small: s.Small, Bug: bug})
	return camp, build, nil
}

// knownStrategy reports whether name is a registered exploration strategy
// (empty selects uniform).
func knownStrategy(name string) bool {
	if name == "" {
		return true
	}
	for _, s := range explore.StrategyNames() {
		if s == name {
			return true
		}
	}
	return false
}

// CheckpointStat is the wire projection of one checkpoint's cross-run
// distribution.
type CheckpointStat struct {
	Ordinal       int    `json:"ordinal"`
	Label         string `json:"label"`
	Distribution  []int  `json:"distribution"`
	Deterministic bool   `json:"deterministic"`
}

// Report is the wire projection of a campaign outcome. It carries exactly
// the hash-level results — verdicts, distributions, detection latency —
// and none of the per-run simulator internals, so a report assembled from
// a resumed hash log is identical to one from an uninterrupted campaign.
type Report struct {
	Program        string           `json:"program"`
	Runs           int              `json:"runs"`
	Points         int              `json:"points"`
	DetPoints      int              `json:"det_points"`
	NDetPoints     int              `json:"ndet_points"`
	Deterministic  bool             `json:"deterministic"`
	DetAtEnd       bool             `json:"det_at_end"`
	FirstNDetRun   int              `json:"first_ndet_run"`
	ShapeMismatch  bool             `json:"shape_mismatch"`
	OutputDistinct int              `json:"output_distinct"`
	Stats          []CheckpointStat `json:"stats"`
	// Explore carries the search outcome of explore jobs; nil on check
	// jobs, keeping their report JSON byte-identical to earlier versions.
	Explore *ExploreOutcome `json:"explore,omitempty"`
}

// ExploreOutcome is the wire projection of an exploration campaign's
// result (explore.Outcome), durable in the store's "explored" record.
type ExploreOutcome struct {
	// Strategy is the schedule-generation strategy that ran.
	Strategy string `json:"strategy"`
	// Budget is the run budget the job was submitted with.
	Budget int `json:"budget"`
	// Runs is the number of schedules executed (the campaign stops at the
	// first divergence).
	Runs int `json:"runs"`
	// Found is true when a schedule-dependent State-Hash divergence was
	// detected.
	Found bool `json:"found"`
	// DivergedRun is the 1-based run of the first divergence (0 if none)
	// — the runs-to-detect measurement.
	DivergedRun int `json:"diverged_run,omitempty"`
	// DistinctOutcomes counts distinct (checkpoint ordinal, State Hash)
	// pairs seen across the campaign.
	DistinctOutcomes int `json:"distinct_outcomes"`
	// DistinctFinals counts distinct final State Hashes.
	DistinctFinals int `json:"distinct_finals"`
	// Hits counts directed preemptions (race-directed strategy).
	Hits int `json:"hits,omitempty"`
}

// projectReport flattens a core report into the wire shape.
func projectReport(rep *core.Report) *Report {
	out := &Report{
		Program:        rep.Program,
		Runs:           len(rep.Runs),
		Points:         rep.Points(),
		DetPoints:      rep.DetPoints,
		NDetPoints:     rep.NDetPoints,
		Deterministic:  rep.Deterministic(),
		DetAtEnd:       rep.DetAtEnd,
		FirstNDetRun:   rep.FirstNDetRun,
		ShapeMismatch:  rep.ShapeMismatch,
		OutputDistinct: rep.OutputDistinct,
	}
	for _, s := range rep.Stats {
		out.Stats = append(out.Stats, CheckpointStat{
			Ordinal:       s.Ordinal,
			Label:         s.Label,
			Distribution:  append([]int(nil), s.Distribution...),
			Deterministic: s.Deterministic,
		})
	}
	return out
}

// HashLogLine is one (run, checkpoint, SH) record of a job's hash log —
// the §6.3 replay log in its durable, comparable form.
type HashLogLine struct {
	Run     int          `json:"run"`
	Ordinal int          `json:"ordinal"`
	Label   string       `json:"label"`
	SH      ihash.Digest `json:"sh"`
}

// WriteHashLog writes lines in the canonical text form
//
//	<run> <ordinal> <sh-hex> <quoted-label>
//
// which ParseHashLog reads back; the format is the interchange unit for
// cross-host comparison.
func WriteHashLog(w io.Writer, lines []HashLogLine) error {
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := fmt.Fprintf(bw, "%d %d %016x %q\n", l.Run, l.Ordinal, uint64(l.SH), l.Label); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseHashLog reads the canonical text form back into lines.
func ParseHashLog(r io.Reader) ([]HashLogLine, error) {
	var out []HashLogLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for n := 1; sc.Scan(); n++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, " ", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("farm: hash log line %d: want 4 fields, got %d", n, len(parts))
		}
		run, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("farm: hash log line %d: run: %v", n, err)
		}
		ord, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("farm: hash log line %d: ordinal: %v", n, err)
		}
		sh, err := strconv.ParseUint(parts[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("farm: hash log line %d: hash: %v", n, err)
		}
		label, err := strconv.Unquote(parts[3])
		if err != nil {
			return nil, fmt.Errorf("farm: hash log line %d: label: %v", n, err)
		}
		out = append(out, HashLogLine{Run: run, Ordinal: ord, Label: label, SH: ihash.Digest(sh)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Divergence locates the first disagreeing checkpoint between two hash
// logs — where a cross-host replay diverged.
type Divergence struct {
	Run     int    `json:"run"`
	Ordinal int    `json:"ordinal"`
	Label   string `json:"label"`
	A       string `json:"a"`
	B       string `json:"b"`
}

// missingSide marks the absent side of a divergence caused by truncation:
// one log has a checkpoint (or a whole run) the other simply lacks —
// the signature of a worker that died mid-run.
const missingSide = "(missing)"

// CompareResult is the outcome of diffing two hash logs.
type CompareResult struct {
	// Equal is true when every run present in both logs has an identical
	// hash vector and both logs cover the same runs.
	Equal bool `json:"equal"`
	// RunsA and RunsB count the complete runs in each log.
	RunsA int `json:"runs_a"`
	RunsB int `json:"runs_b"`
	// RunsCompared counts runs present in both logs.
	RunsCompared int `json:"runs_compared"`
	// DifferingRuns lists the run indices whose vectors disagree (including
	// runs one side is missing entirely).
	DifferingRuns []int `json:"differing_runs,omitempty"`
	// OnlyA and OnlyB list runs present in one log but not the other — a
	// truncated campaign (worker death, partial fetch) shows up here
	// instead of silently shrinking the comparison.
	OnlyA []int `json:"only_a,omitempty"`
	OnlyB []int `json:"only_b,omitempty"`
	// First is the earliest divergence (by run, then ordinal), nil only
	// when the logs are equal. A side reading "(missing)" means that log
	// ends before the checkpoint — truncation, not a hash mismatch.
	First *Divergence `json:"first,omitempty"`
}

// CompareHashLogs diffs two hash logs run by run. Two hosts checking the
// same (app, input, seeds) must produce identical logs; the first
// divergence pinpoints the checkpoint where their executions differ.
//
// Truncated inputs never pass silently: a run present in only one log, or
// a run whose vector is a strict prefix of the other side's, makes the
// result unequal and First names the first checkpoint the shorter side is
// missing — so a campaign cut short by a dying worker cannot masquerade
// as a clean (if small) match.
func CompareHashLogs(a, b []HashLogLine) *CompareResult {
	byRun := func(lines []HashLogLine) map[int][]HashLogLine {
		m := make(map[int][]HashLogLine)
		for _, l := range lines {
			m[l.Run] = append(m[l.Run], l)
		}
		return m
	}
	ra, rb := byRun(a), byRun(b)
	res := &CompareResult{Equal: true, RunsA: len(ra), RunsB: len(rb)}
	maxRun := -1
	for run := range ra {
		if run > maxRun {
			maxRun = run
		}
	}
	for run := range rb {
		if run > maxRun {
			maxRun = run
		}
	}
	setFirst := func(d *Divergence) {
		if res.First == nil {
			res.First = d
		}
	}
	for run := 0; run <= maxRun; run++ {
		va, okA := ra[run]
		vb, okB := rb[run]
		switch {
		case !okA && !okB:
			continue
		case !okA:
			res.Equal = false
			res.OnlyB = append(res.OnlyB, run)
			res.DifferingRuns = append(res.DifferingRuns, run)
			setFirst(&Divergence{Run: run, Ordinal: vb[0].Ordinal, Label: vb[0].Label,
				A: missingSide, B: vb[0].SH.String()})
			continue
		case !okB:
			res.Equal = false
			res.OnlyA = append(res.OnlyA, run)
			res.DifferingRuns = append(res.DifferingRuns, run)
			setFirst(&Divergence{Run: run, Ordinal: va[0].Ordinal, Label: va[0].Label,
				A: va[0].SH.String(), B: missingSide})
			continue
		}
		res.RunsCompared++
		n := len(va)
		if len(vb) < n {
			n = len(vb)
		}
		runDiffers := false
		for i := 0; i < n; i++ {
			if va[i].SH != vb[i].SH {
				runDiffers = true
				setFirst(&Divergence{
					Run:     run,
					Ordinal: va[i].Ordinal,
					Label:   va[i].Label,
					A:       va[i].SH.String(),
					B:       vb[i].SH.String(),
				})
				break
			}
		}
		if !runDiffers && len(va) != len(vb) {
			// The common prefix agrees but one side's run is truncated:
			// point at the first checkpoint the shorter side lacks.
			runDiffers = true
			if len(va) > len(vb) {
				l := va[n]
				setFirst(&Divergence{Run: run, Ordinal: l.Ordinal, Label: l.Label,
					A: l.SH.String(), B: missingSide})
			} else {
				l := vb[n]
				setFirst(&Divergence{Run: run, Ordinal: l.Ordinal, Label: l.Label,
					A: missingSide, B: l.SH.String()})
			}
		}
		if runDiffers {
			res.Equal = false
			res.DifferingRuns = append(res.DifferingRuns, run)
		}
	}
	return res
}
