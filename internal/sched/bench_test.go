package sched

import "testing"

// BenchmarkHandoff measures a forced token handoff between two threads —
// the dominant runtime cost of the serializing scheduler.
func BenchmarkHandoff(b *testing.B) {
	s := New(2, 1, 1)
	_ = s.Run(func(tid int) {
		per := b.N / 2
		for i := 0; i < per; i++ {
			s.Preempt(tid)
		}
	})
}

// BenchmarkYieldNoSwitch measures the fast path (no context switch).
func BenchmarkYieldNoSwitch(b *testing.B) {
	s := New(1, 1, 1<<30)
	_ = s.Run(func(tid int) {
		for i := 0; i < b.N; i++ {
			s.Yield()
		}
	})
}

// BenchmarkBarrierEpisode measures one full 8-party barrier episode.
func BenchmarkBarrierEpisode(b *testing.B) {
	s := New(8, 1, 1<<30)
	bar := NewBarrier("b", 8)
	_ = s.Run(func(tid int) {
		for i := 0; i < b.N; i++ {
			bar.Await(s, tid)
		}
	})
}
