package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestSlowClientTimedOut is the slow-client regression test: the daemon's
// HTTP server used to be built with no timeouts at all, so a client that
// opened a connection and stalled mid-request held it forever. With
// ReadTimeout set, the server must drop the connection.
func TestSlowClientTimedOut(t *testing.T) {
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	hs := newHTTPServer("", api, nil, nil, 150*time.Millisecond, time.Second, time.Second, false)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request, then silence: the read deadline must fire.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stuck\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	n, err := conn.Read(make([]byte, 1))
	if err == nil || n != 0 {
		t.Fatalf("server answered a half-written request (n=%d err=%v)", n, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the stalled connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("stalled connection held for %v, want ~ReadTimeout", elapsed)
	}

	// A well-behaved client on the same server is unaffected.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthy request got HTTP %d", resp.StatusCode)
	}
}

// TestPprofOptIn: the profiling endpoints exist only behind the -pprof
// flag; by default the daemon exposes nothing under /debug/.
func TestPprofOptIn(t *testing.T) {
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	for _, on := range []bool{false, true} {
		hs := newHTTPServer("", api, nil, nil, time.Second, time.Second, time.Second, on)
		ts := httptest.NewServer(hs.Handler)
		resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		wantOK := on
		if gotOK := resp.StatusCode == http.StatusOK; gotOK != wantOK {
			t.Errorf("pprof=%v: /debug/pprof/cmdline -> HTTP %d", on, resp.StatusCode)
		}
	}
}
