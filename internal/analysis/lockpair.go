package analysis

import (
	"go/ast"
	"go/token"
)

// LockPair flags Lock/Unlock and StopHashing/StartHashing operations that
// are unbalanced along function-local control flow: a Lock never released
// in its function, an Unlock with no matching Lock, and a StopHashing
// region never re-enabled.
//
// The simulator's mutexes, like pthread mutexes, are not recursive and are
// not validated for pairing at runtime — a leaked Lock deadlocks only on
// schedules that contend for it, and a store executed inside a forgotten
// StopHashing region silently vanishes from the state hash (the §3.3
// start_hashing/stop_hashing discipline: analysis-tool stores must not
// pollute the hash, but *program* stores must all reach it).
//
// The analysis is a linear walk with branch-termination awareness: an
// early-return branch's lock state does not leak into the code that runs
// when the branch was not taken (volrend's hand-coded barrier releases the
// lock in both an early-return arm and the fall-through path — balanced).
// Pairing is per-function: lock handoffs between functions are out of
// scope, as in the paper's tooling.
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "unpaired Lock/Unlock and StopHashing/StartHashing",
	Run:  runLockPair,
}

func runLockPair(pass *Pass) {
	s := &lockScanner{pass: pass}
	funcBodies(pass.Pkg, func(name string, body *ast.BlockStmt) {
		st := &lockState{}
		s.walkStmts(body.List, st)
		s.finish(name, st)
	})
}

// heldLock is one acquired-but-unreleased lock (or hashing stop).
type heldLock struct {
	key      string // lock argument expression, or "<hashing>"
	pos      token.Pos
	deferred bool // released by a defer: satisfied at function end
}

type lockState struct {
	held []heldLock
}

func (st *lockState) clone() *lockState {
	return &lockState{held: append([]heldLock(nil), st.held...)}
}

// release pops the most recent live entry for key; ok is false when none
// is held.
func (st *lockState) release(key string) bool {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].key == key && !st.held[i].deferred {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return true
		}
	}
	return false
}

// markDeferred marks the most recent live entry for key as released at
// function exit.
func (st *lockState) markDeferred(key string) bool {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].key == key && !st.held[i].deferred {
			st.held[i].deferred = true
			return true
		}
	}
	return false
}

const hashingKey = "<hashing>"

type lockScanner struct {
	pass *Pass
	// loopBreaks is a stack of collectors, one per enclosing for/range
	// loop, recording the lock state at each unlabeled break. A nil entry
	// marks a switch/select scope: breaks there leave the switch, not the
	// loop, and must not register.
	loopBreaks []*[]*lockState
}

// collectBreaks runs fn with a fresh break collector on the stack and
// returns the states captured at unlabeled break statements inside it.
func (s *lockScanner) collectBreaks(fn func()) []*lockState {
	var states []*lockState
	s.loopBreaks = append(s.loopBreaks, &states)
	fn()
	s.loopBreaks = s.loopBreaks[:len(s.loopBreaks)-1]
	return states
}

// shieldBreaks runs fn with a nil collector pushed, so unlabeled breaks
// inside (a switch or select clause) do not register with the loop.
func (s *lockScanner) shieldBreaks(fn func()) {
	s.loopBreaks = append(s.loopBreaks, nil)
	fn()
	s.loopBreaks = s.loopBreaks[:len(s.loopBreaks)-1]
}

// mergeBreakStates intersects the held sets of the break-exit states: a
// lock is considered held after the loop only when every break path still
// holds it (a lock leaked on just some exits is beyond this per-function
// linear walk).
func mergeBreakStates(states []*lockState) *lockState {
	merged := states[0].clone()
	for _, other := range states[1:] {
		var kept []heldLock
		for _, h := range merged.held {
			for _, o := range other.held {
				if o.key == h.key {
					kept = append(kept, h)
					break
				}
			}
		}
		merged.held = kept
	}
	return merged
}

func (s *lockScanner) finish(fn string, st *lockState) {
	for _, h := range st.held {
		if h.deferred {
			continue
		}
		if h.key == hashingKey {
			s.pass.Reportf(h.pos, "StopHashing is not re-enabled by StartHashing before %s returns: every later store in the run silently bypasses the state hash", fn)
		} else {
			s.pass.Reportf(h.pos, "Lock(%s) is not released before %s returns", h.key, fn)
		}
	}
}

func (s *lockScanner) walkStmts(list []ast.Stmt, st *lockState) bool {
	for _, stmt := range list {
		if s.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (s *lockScanner) walkStmt(stmt ast.Stmt, st *lockState) bool {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		s.scanExpr(stmt.X, st)
		return stmtTerminates(stmt)
	case *ast.AssignStmt:
		for _, e := range stmt.Rhs {
			s.scanExpr(e, st)
		}
		for _, e := range stmt.Lhs {
			s.scanExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v, st)
					}
				}
			}
		}
	case *ast.IfStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		s.scanExpr(stmt.Cond, st)
		bodySt := st.clone()
		bodyTerm := s.walkStmts(stmt.Body.List, bodySt)
		if stmt.Else == nil {
			if !bodyTerm {
				*st = *bodySt
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := s.walkStmt(stmt.Else, elseSt)
		switch {
		case bodyTerm && !elseTerm:
			*st = *elseSt
		case !bodyTerm:
			*st = *bodySt
		}
		return bodyTerm && elseTerm
	case *ast.ForStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		if stmt.Cond != nil {
			s.scanExpr(stmt.Cond, st)
		}
		body := st.clone()
		breaks := s.collectBreaks(func() {
			s.walkStmts(stmt.Body.List, body)
			if stmt.Post != nil {
				s.walkStmt(stmt.Post, body)
			}
		})
		if stmt.Cond == nil {
			// for {}: the fall-through exit is unreachable — the loop is
			// left only via break (use those states) or return/panic (in
			// which case the code after the loop is dead).
			if len(breaks) == 0 {
				return true
			}
			*st = *mergeBreakStates(breaks)
			return false
		}
		*st = *body
	case *ast.RangeStmt:
		s.scanExpr(stmt.X, st)
		body := st.clone()
		s.collectBreaks(func() {
			s.walkStmts(stmt.Body.List, body)
		})
		*st = *body
	case *ast.BlockStmt:
		return s.walkStmts(stmt.List, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		s.shieldBreaks(func() {
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CaseClause:
					s.walkStmts(n.Body, st.clone())
					return false
				case *ast.CommClause:
					s.walkStmts(n.Body, st.clone())
					return false
				}
				return true
			})
		})
	case *ast.LabeledStmt:
		return s.walkStmt(stmt.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			s.scanExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		if stmt.Tok == token.BREAK && stmt.Label == nil && len(s.loopBreaks) > 0 {
			if top := s.loopBreaks[len(s.loopBreaks)-1]; top != nil {
				*top = append(*top, st.clone())
			}
		}
		return true
	case *ast.DeferStmt:
		s.deferred(stmt.Call, st)
	case *ast.GoStmt:
		s.scanExpr(stmt.Call, st)
	case *ast.IncDecStmt:
		s.scanExpr(stmt.X, st)
	case *ast.SendStmt:
		s.scanExpr(stmt.Chan, st)
		s.scanExpr(stmt.Value, st)
	}
	return false
}

// deferred handles defer t.Unlock(x) / defer t.StartHashing(): the matching
// acquisition is satisfied at function exit.
func (s *lockScanner) deferred(call *ast.CallExpr, st *lockState) {
	name, ok := threadMethod(s.pass.Pkg, call)
	if !ok {
		s.scanExpr(call, st)
		return
	}
	switch name {
	case "Unlock":
		if len(call.Args) == 1 {
			key := exprKey(call.Args[0])
			if !st.markDeferred(key) {
				s.pass.Reportf(call.Pos(), "deferred Unlock(%s) has no matching Lock in this function", key)
			}
		}
	case "StartHashing":
		if !st.markDeferred(hashingKey) {
			s.pass.Reportf(call.Pos(), "deferred StartHashing has no matching StopHashing in this function")
		}
	default:
		s.scanExpr(call, st)
	}
}

func (s *lockScanner) scanExpr(e ast.Expr, st *lockState) {
	pkg := s.pass.Pkg
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Function literals pair independently; runLockPair does not
			// visit them via funcBodies, so scan here with a fresh state.
			inner := &lockState{}
			s.walkStmts(n.Body.List, inner)
			s.finish("the function literal", inner)
			return false
		case *ast.CallExpr:
			name, ok := threadMethod(pkg, n)
			if !ok {
				return true
			}
			switch name {
			case "Lock":
				if len(n.Args) == 1 {
					st.held = append(st.held, heldLock{key: exprKey(n.Args[0]), pos: n.Pos()})
				}
			case "Unlock":
				if len(n.Args) == 1 {
					key := exprKey(n.Args[0])
					if !st.release(key) {
						s.pass.Reportf(n.Pos(), "Unlock(%s) has no matching Lock in this function", key)
					}
				}
			case "StopHashing":
				st.held = append(st.held, heldLock{key: hashingKey, pos: n.Pos()})
			case "StartHashing":
				if !st.release(hashingKey) {
					s.pass.Reportf(n.Pos(), "StartHashing without a preceding StopHashing in this function: hashing is already on at thread start, so this pairing is inverted or crosses a function boundary")
				}
			}
		}
		return true
	})
}
