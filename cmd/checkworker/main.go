// Command checkworker is a checkfleet worker node. It pulls run-shard
// leases from a fleet-mode checkd (see cmd/checkd -fleet), fetches each
// campaign's recorded replay bundle from the coordinator's content-addressed
// store (caching it on disk by digest), replays the leased runs, and streams
// the resulting State-Hash records back in batches.
//
// Usage:
//
//	checkworker -coordinator http://host:8347 [-name NAME] [-cache DIR]
//	            [-poll D] [-batch N] [-inflight N] [-run-latency D]
//
// The worker holds no campaign state of its own: every run is reproducible
// from (replay bundle, run index) alone, so a worker may be killed at any
// moment — its lease expires at the coordinator and the undelivered runs are
// re-dispatched to the rest of the fleet. -run-latency injects an artificial
// per-run delay; it exists for scaling benchmarks and kill tests.
//
// On SIGINT/SIGTERM the worker stops pulling, abandons its current shard
// (the coordinator re-queues the remainder on lease expiry) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"instantcheck/internal/fleet"
)

func defaultName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8347", "base URL of the fleet-mode checkd")
	name := flag.String("name", defaultName(), "worker name (shown on coordinator metrics)")
	cache := flag.String("cache", filepath.Join(os.TempDir(), "checkworker-cache"), "replay-bundle cache directory")
	poll := flag.Duration("poll", 100*time.Millisecond, "idle sleep between lease requests that found no work")
	batch := flag.Int("batch", 4, "run records per results POST")
	inflight := flag.Int("inflight", 2, "max unacknowledged result batches before replay blocks")
	runLatency := flag.Duration("run-latency", 0, "artificial delay before each replay run (benchmarks/tests)")
	flag.Parse()
	log.SetPrefix("checkworker: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	w, err := fleet.NewWorker(fleet.WorkerOptions{
		Name:         *name,
		Coordinator:  *coordinator,
		CacheDir:     *cache,
		PollInterval: *poll,
		BatchSize:    *batch,
		MaxInFlight:  *inflight,
		RunLatency:   *runLatency,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("worker %s pulling from %s (cache %s)", *name, *coordinator, *cache)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	log.Print("interrupted, any held lease left to expire")
}
