package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a checkd daemon's HTTP API. The zero HTTPClient uses
// http.DefaultClient; BaseURL is like "http://localhost:8347".
//
// Every method takes a context and aborts the in-flight HTTP request when
// it is canceled — `instantcheck remote` wires SIGINT into this, so a ^C
// cuts a hung poll instead of waiting out the backoff budget.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// WaitErrorLimit is the number of consecutive poll failures Wait
	// tolerates before giving up (<= 0 selects the default, 8). A daemon
	// restart mid-campaign makes a few polls fail even though the job will
	// finish; Wait retries through the gap with capped exponential backoff.
	WaitErrorLimit int
}

// defaultWaitErrorLimit is the consecutive-failure budget of Wait.
const defaultWaitErrorLimit = 8

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs one API call, decoding a JSON response into out (unless out
// is nil) and mapping error payloads to Go errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("farm: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("farm: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// text performs one GET returning the raw response body.
func (c *Client) text(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("farm: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return string(b), nil
}

// Submit enqueues a campaign and returns the accepted job.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", spec, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id JobID) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+string(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Jobs lists all jobs on the daemon.
func (c *Client) Jobs(ctx context.Context) ([]*Job, error) {
	var out struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Report fetches a finished job's report.
func (c *Client) Report(ctx context.Context, id JobID) (*Report, error) {
	var rep Report
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+string(id)+"/report", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// HashLog fetches a job's per-checkpoint hash stream in the canonical
// text form — the unit of cross-host comparison.
func (c *Client) HashLog(ctx context.Context, id JobID) (string, error) {
	return c.text(ctx, "/api/v1/jobs/"+string(id)+"/hashlog")
}

// Compare diffs two hash logs (jobs on the daemon, or inline logs fetched
// from elsewhere).
func (c *Client) Compare(ctx context.Context, req CompareRequest) (*CompareResult, error) {
	var res CompareResult
	if err := c.do(ctx, http.MethodPost, "/api/v1/compare", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Health fetches the daemon's /healthz liveness summary.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// MetricsText fetches the daemon's /metrics endpoint: the raw Prometheus
// text exposition (parse with obs.ParseExposition if needed).
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	return c.text(ctx, "/metrics")
}

// Cancel cancels a queued or running job; it reports whether the daemon
// actually canceled it.
func (c *Client) Cancel(ctx context.Context, id JobID) (bool, error) {
	var out struct {
		Canceled bool `json:"canceled"`
	}
	if err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+string(id), nil, &out); err != nil {
		return false, err
	}
	return out.Canceled, nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
//
// Transient poll errors — connection refused while the daemon restarts, a
// timeout on a loaded host — do not abort the wait: Wait retries with
// exponential backoff (starting at the poll interval, capped at 10× or 2s,
// whichever is larger) and fails only after WaitErrorLimit consecutive
// errors. A successful poll resets both the error budget and the backoff,
// so a waiter that rode out a daemon restart resumes tight polling.
//
// Cancellation is prompt: ctx aborts the in-flight poll request itself,
// not just the sleep between polls, and a poll failure caused by the
// context never counts against the error budget.
func (c *Client) Wait(ctx context.Context, id JobID, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	limit := c.WaitErrorLimit
	if limit <= 0 {
		limit = defaultWaitErrorLimit
	}
	maxDelay := 10 * poll
	if maxDelay < 2*time.Second {
		maxDelay = 2 * time.Second
	}
	delay := poll
	errors := 0
	for {
		job, err := c.Job(ctx, id)
		switch {
		case ctx.Err() != nil:
			return job, ctx.Err()
		case err != nil:
			errors++
			if errors >= limit {
				return nil, fmt.Errorf("farm: wait for %s: %d consecutive poll failures: %w", id, errors, err)
			}
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		case job.State.Terminal():
			return job, nil
		default:
			errors = 0
			delay = poll
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return job, ctx.Err()
		case <-timer.C:
		}
	}
}
