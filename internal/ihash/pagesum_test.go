package ihash

import (
	"math/rand"
	"testing"
)

// TestPageSumCacheAlgebra drives randomized Add/Replace sequences against a
// naive model (a plain map summed from scratch) and checks the incremental
// total matches the full recomputation after every operation — the group
// identity SH' = SH ⊖ old ⊕ new that delta checkpoints rely on.
func TestPageSumCacheAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewPageSumCache()
	model := map[uint64]Digest{}
	recompute := func() Digest {
		var d Digest
		for _, v := range model {
			d = d.Combine(v)
		}
		return d
	}
	for op := 0; op < 2000; op++ {
		page := uint64(rng.Intn(40))
		switch rng.Intn(3) {
		case 0: // rebuild-style accumulation
			d := Digest(rng.Uint64())
			c.Add(page, d)
			model[page] = model[page].Combine(d)
		case 1: // delta-style replacement
			next := Digest(rng.Uint64())
			old := c.Replace(page, next)
			if want := model[page]; old != want {
				t.Fatalf("op %d: Replace returned old %s, model %s", op, old, want)
			}
			model[page] = next
		case 2: // page drops out of the live state
			c.Replace(page, Zero)
			delete(model, page)
		}
		if got, want := c.Total(), recompute(); got != want {
			t.Fatalf("op %d: incremental total %s, recomputed %s", op, got, want)
		}
	}
}

// TestPageSumCacheZeroEviction: replacing a page's contribution with Zero
// must delete the entry, so the cache tracks only pages with live nonzero
// state (freed pages cost nothing).
func TestPageSumCacheZeroEviction(t *testing.T) {
	c := NewPageSumCache()
	c.Add(3, Digest(7))
	c.Add(9, Digest(11))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if old := c.Replace(3, Zero); old != Digest(7) {
		t.Fatalf("Replace old = %s, want 7", old)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after zero replace = %d, want 1", c.Len())
	}
	if c.Total() != Digest(11) {
		t.Fatalf("Total = %s, want 11", c.Total())
	}
	c.Reset()
	if c.Len() != 0 || c.Total() != Zero {
		t.Fatalf("Reset left Len=%d Total=%s", c.Len(), c.Total())
	}
}
