package racefilter

import (
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// toy adapts closures to sim.Program.
type toy struct {
	nt     int
	setup  func(*sim.Thread)
	worker func(*sim.Thread)
}

func (p *toy) Name() string { return "toy" }
func (p *toy) Threads() int { return p.nt }
func (p *toy) Setup(t *sim.Thread) {
	if p.setup != nil {
		p.setup(t)
	}
}
func (p *toy) Worker(t *sim.Thread) {
	if p.worker != nil {
		p.worker(t)
	}
}

// TestNoFalsePositiveUnderLock checks lock-ordered accesses never race.
func TestNoFalsePositiveUnderLock(t *testing.T) {
	var g uint64
	var mu *sched.Mutex
	build := func() sim.Program {
		return &toy{nt: 2,
			setup: func(th *sim.Thread) {
				g = th.AllocStatic("static:g", 1, mem.KindWord)
				mu = th.Machine().NewMutex("g")
			},
			worker: func(th *sim.Thread) {
				for i := 0; i < 5; i++ {
					th.Lock(mu)
					th.Store(g, th.Load(g)+1)
					th.Unlock(mu)
				}
			},
		}
	}
	races, err := Detect(build, Config{Threads: 2, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("false positives: %+v", races)
	}
}

// TestNoFalsePositiveAcrossBarrier checks barrier-separated phases never
// race (the disjoint-write phase pattern of the bit-deterministic apps).
func TestNoFalsePositiveAcrossBarrier(t *testing.T) {
	var arr uint64
	var bar *sched.Barrier
	build := func() sim.Program {
		return &toy{nt: 2,
			setup: func(th *sim.Thread) {
				arr = th.AllocStatic("static:a", 2, mem.KindWord)
				bar = th.Machine().NewBarrier("b")
			},
			worker: func(th *sim.Thread) {
				// Phase 1: write own slot; phase 2: read the OTHER slot.
				th.Store(arr+uint64(th.TID())*8, uint64(th.TID()+1))
				th.BarrierWait(bar)
				_ = th.Load(arr + uint64(1-th.TID())*8)
			},
		}
	}
	races, err := Detect(build, Config{Threads: 2, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("false positives across barrier: %+v", races)
	}
}

// TestSetupHappensBeforeWorkers checks init-thread writes never race with
// worker reads.
func TestSetupHappensBeforeWorkers(t *testing.T) {
	var g uint64
	build := func() sim.Program {
		return &toy{nt: 2,
			setup: func(th *sim.Thread) {
				g = th.AllocStatic("static:g", 1, mem.KindWord)
				th.Store(g, 42)
			},
			worker: func(th *sim.Thread) { _ = th.Load(g) },
		}
	}
	races, err := Detect(build, Config{Threads: 2, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Errorf("setup/worker false positive: %+v", races)
	}
}

// TestDetectsRaces checks the three access-pair kinds are found and
// attributed.
func TestDetectsRaces(t *testing.T) {
	var g uint64
	build := func() sim.Program {
		return &toy{nt: 2,
			setup: func(th *sim.Thread) {
				g = th.AllocStatic("static:racy", 1, mem.KindWord)
			},
			worker: func(th *sim.Thread) {
				if th.TID() == 0 {
					th.Store(g, 7) // unordered write
				} else {
					_ = th.Load(g) // unordered read
					th.Store(g, 9) // unordered write
				}
			},
		}
	}
	races, err := Detect(build, Config{Threads: 2, Runs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) == 0 {
		t.Fatal("no races detected")
	}
	kinds := map[AccessKind]bool{}
	for _, r := range races {
		kinds[r.Kind] = true
		if r.Site != "static:racy" {
			t.Errorf("race not attributed: %+v", r)
		}
	}
	if !kinds[WriteWrite] {
		t.Error("write-write race missed")
	}
	if !kinds[WriteRead] && !kinds[ReadWrite] {
		t.Error("read/write races missed")
	}
}

// TestBenignRaceFiltered reproduces the paper's volrend story (§7.2.1) in
// miniature: a racy sense-reversing flag is a true data race, but every
// schedule converges to the same state — the filter classifies it benign.
func TestBenignRaceFiltered(t *testing.T) {
	var count, sense uint64
	var mu *sched.Mutex
	build := func() sim.Program {
		return &toy{nt: 2,
			setup: func(th *sim.Thread) {
				count = th.AllocStatic("static:hc.count", 1, mem.KindWord)
				sense = th.AllocStatic("static:hc.sense", 1, mem.KindWord)
				mu = th.Machine().NewMutex("hc")
			},
			worker: func(th *sim.Thread) {
				mySense := th.Load(sense) // racy read: the benign race
				th.Lock(mu)
				c := th.Load(count) + 1
				if c == 2 {
					th.Store(count, 0)
					th.Store(sense, 1-mySense)
					th.Unlock(mu)
					return
				}
				th.Store(count, c)
				th.Unlock(mu)
				for th.Load(sense) == mySense {
					th.Yield()
				}
			},
		}
	}
	cl, err := Classify(build, Config{Threads: 2, Runs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Verdicts) == 0 {
		t.Fatal("the hand-coded barrier race was not detected")
	}
	if !cl.Deterministic {
		t.Fatal("program should be externally deterministic")
	}
	for _, v := range cl.Verdicts {
		if !v.Benign {
			t.Errorf("benign race misclassified harmful: %+v", v.Race)
		}
	}
	if cl.BenignCount() != len(cl.Verdicts) {
		t.Error("BenignCount mismatch")
	}
}

// TestHarmfulRaceFlagged checks a last-writer-wins race whose outcome
// persists is classified harmful.
func TestHarmfulRaceFlagged(t *testing.T) {
	var g uint64
	build := func() sim.Program {
		return &toy{nt: 2,
			setup: func(th *sim.Thread) {
				g = th.AllocStatic("static:winner", 1, mem.KindWord)
			},
			worker: func(th *sim.Thread) {
				th.Compute(3)
				th.Store(g, uint64(th.TID())+1)
			},
		}
	}
	cl, err := Classify(build, Config{Threads: 2, Runs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Deterministic {
		t.Fatal("last-writer-wins program classified deterministic")
	}
	found := false
	for _, v := range cl.Verdicts {
		if v.Race.Site == "static:winner" && v.Race.Kind == WriteWrite {
			found = true
			if v.Benign {
				t.Error("harmful race classified benign")
			}
			if v.DistinctValues < 2 {
				t.Errorf("distinct values = %d", v.DistinctValues)
			}
		}
	}
	if !found {
		t.Fatal("write-write race on winner not detected")
	}
}

// TestVolrendBenignRaceEndToEnd runs the detector over the actual volrend
// kernel: its hand-coded barrier contains a real race, and the program is
// nevertheless deterministic — InstantCheck's state comparison filters the
// race as benign, exactly the paper's observation.
func TestVolrendBenignRaceEndToEnd(t *testing.T) {
	// Import cycle avoidance: apps imports core; racefilter is below both.
	// Build volrend through the registry at one remove is not possible
	// here, so this end-to-end check lives in the root package tests.
	t.Skip("covered by TestRaceFilterVolrend in the root package")
}

// TestAccessKindStrings pins diagnostics.
func TestAccessKindStrings(t *testing.T) {
	if WriteWrite.String() != "write-write" || ReadWrite.String() != "read-write" || WriteRead.String() != "write-read" {
		t.Error("kind strings")
	}
}
