// Package analysis is a small, dependency-free static-analysis framework
// (go/ast + go/types only) plus the five icvet analyzers that check the
// instrumentation discipline simulated programs must follow.
//
// The paper's SW-InstantCheck_Inc scheme is only sound when every shared
// store is instrumented and every read-modify-write is atomic (§4.1): an
// uninstrumented or racy store silently corrupts the incremental state hash,
// producing false nondeterminism alarms — or false "deterministic" verdicts.
// This reproduction has the same trust boundary: workloads must route all
// shared-memory traffic through sim.Thread methods. The analyzers make that
// contract checkable at build time:
//
//   - directstate: Go-variable reads/writes in Setup/Worker bodies that
//     bypass Thread.Load/Store (the uninstrumented-store hole);
//   - atomicity: unlocked read-modify-write of a shared simulated address
//     (the static mirror of the §4.1 caveat that SWIncNonAtomic exhibits
//     dynamically);
//   - storekind: integer stores into KindFloat blocks and FP stores into
//     KindWord blocks (the runtime checkKind panic, at "compile" time);
//   - lockpair: Lock/Unlock and StopHashing/StartHashing unbalanced along
//     function-local control flow;
//   - ignoresite: IgnoreRule sites that match no allocation site literal in
//     the package.
//
// Beyond the per-line analyzers, RaceCheck (cmd/icvet's "race"
// subcommand, race.go) is an interprocedural lockset/barrier-phase race
// analysis over whole sim.Programs, and StaleIgnores (stale.go, reported
// under the name "staleignore") flags suppression comments that no
// longer cover any finding.
//
// Findings can be suppressed with a trailing comment on (or a full-line
// comment above) the offending line:
//
//	//icvet:ignore atomicity deliberate §4.1 fixture
//
// naming one analyzer, a comma-separated list, "race" for RaceCheck
// pairs, or "all".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in reports and suppression comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass's package and reports findings.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the finding.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the five icvet analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{DirectState, Atomicity, StoreKind, LockPair, IgnoreSite}
}

// ByName returns the named analyzer from All, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunOptions configures RunAnalyzers.
type RunOptions struct {
	// NoSuppress disables //icvet:ignore comment processing (used by the
	// analyzer tests, which assert that deliberately-suppressed findings
	// are still detected).
	NoSuppress bool
	// ReportStale adds staleignore diagnostics for //icvet:ignore
	// comments that suppress nothing. It only takes effect when
	// suppression is on and requires running every analyzer — a stale
	// verdict against a partial run would be wrong — so callers using a
	// -run filter should leave it off.
	ReportStale bool
}

// RunAnalyzers runs the given analyzers over one loaded package and returns
// the surviving diagnostics sorted by position then analyzer name.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, opt RunOptions) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		a.Run(pass)
		out = append(out, pass.diags...)
	}
	if !opt.NoSuppress {
		full := out
		out = filterSuppressed(pkg, out)
		if opt.ReportStale {
			out = append(out, StaleIgnores(pkg, full, RaceCheck(pkg).Pairs)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

const suppressPrefix = "icvet:ignore"

// suppressions maps file -> line -> analyzer names suppressed there. A
// suppression comment covers both its own line (trailing style) and the
// following line (full-line style).
func suppressions(pkg *Package) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, ic := range ignoreComments(pkg) {
		lines := out[ic.pos.Filename]
		if lines == nil {
			lines = make(map[int][]string)
			out[ic.pos.Filename] = lines
		}
		lines[ic.pos.Line] = append(lines[ic.pos.Line], ic.names...)
		lines[ic.pos.Line+1] = append(lines[ic.pos.Line+1], ic.names...)
	}
	return out
}

// ignoreComments parses every //icvet:ignore comment of the package.
func ignoreComments(pkg *Package) []ignoreComment {
	var out []ignoreComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, suppressPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // malformed: no analyzer names
				}
				out = append(out, ignoreComment{
					pos:   pkg.Fset.Position(c.Pos()),
					names: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return out
}

// filterSuppressed drops diagnostics covered by //icvet:ignore comments.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	sup := suppressions(pkg)
	out := diags[:0]
	for _, d := range diags {
		names := sup[d.Pos.Filename][d.Pos.Line]
		suppressed := false
		for _, n := range names {
			if n == d.Analyzer || n == "all" {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// inspectFiles applies f to every node of every file in the package.
func inspectFiles(pkg *Package, f func(ast.Node) bool) {
	for _, file := range pkg.Files {
		ast.Inspect(file, f)
	}
}
