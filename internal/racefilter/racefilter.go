// Package racefilter implements the benign-data-race application of the
// InstantCheck primitive (paper §6.1). Data-race detectors report every
// race, but Narayanasamy et al. found ~90% of reported races to be benign —
// they never change the program's outcome — and proposed classifying races
// by comparing the memory states produced when the race resolves both
// ways. InstantCheck makes that comparison cheap: states are compared by
// their 64-bit hashes, and a race is flagged harmful only when the states
// actually diverge.
//
// The package provides two pieces:
//
//   - Detector: a FastTrack-style epoch happens-before race detector over
//     a dense shadow-page directory (see epoch.go and shadow.go), fed by
//     the simulator's event stream — the baseline race detector
//     InstantCheck would piggyback on. Same-epoch repeat accesses
//     short-circuit in O(1) with no stack unwinding, so detection runs
//     cost close to plain check runs. VCDetector (vcref.go) is the
//     retained vector-clock reference implementation; the two are pinned
//     observationally identical by differential fuzzing, and
//     ICHECK_RACE_DETECTOR=vc selects the reference at run time (the A/B
//     benchmark hook).
//   - Classify: runs the program under many schedules and marks each
//     detected racy address benign or harmful by whether any reachable
//     final state disagrees at it — the paper's observation that "using
//     InstantCheck to detect races already filters out benign races
//     because of the state comparison that InstantCheck performs".
package racefilter

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// AccessKind distinguishes the racing access pair.
type AccessKind int

const (
	// WriteWrite is a write racing a previous write.
	WriteWrite AccessKind = iota
	// ReadWrite is a write racing a previous read.
	ReadWrite
	// WriteRead is a read racing a previous write.
	WriteRead
)

// String names the pair like race reports do.
func (k AccessKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case ReadWrite:
		return "read-write"
	case WriteRead:
		return "write-read"
	default:
		return "AccessKind(?)"
	}
}

// Race is one detected happens-before race, deduplicated by address and
// kind.
type Race struct {
	// Addr is the racy word.
	Addr uint64
	// Kind is the access pair.
	Kind AccessKind
	// TidA and TidB are the two unordered threads (first occurrence).
	TidA, TidB int
	// Site attributes the address to its allocation site (when known).
	Site string
	// Offset is the word offset within the site's block.
	Offset int
	// SiteA and SiteB are the source sites ("file.go:line") of the two
	// racing accesses, in the order named by Kind (A first). They carry
	// the same file:line identity the static `icvet race` analysis
	// reports, so a dynamic race can be checked against the static
	// candidate-pair report (the soundness cross-check).
	SiteA, SiteB string
	// pcA and pcB retain the raw access pcs behind SiteA/SiteB; the
	// differential fuzzer compares them so attribution equivalence is
	// pinned at pc granularity, not just file:line.
	pcA, pcB uintptr
}

// HB is the happens-before detector contract shared by the epoch detector
// (the default) and the vector-clock reference: a sim event listener that
// accumulates a deduplicated race set across everything it observes.
type HB interface {
	sim.EventListener
	// Races returns the detected races sorted by address then kind.
	Races() []Race
}

// EnvDetector is the environment variable that selects the detector
// implementation process-wide: "vc" picks the vector-clock reference,
// anything else (including unset) the epoch detector. It is the
// interleaved-A/B hook, mirroring ICHECK_STORE_BUFFER and
// ICHECK_TRAVERSE_DELTA.
const EnvDetector = "ICHECK_RACE_DETECTOR"

// Selected returns a fresh detector of the implementation selected by
// EnvDetector.
func Selected(nt int) HB {
	if os.Getenv(EnvDetector) == "vc" {
		return NewVCDetector(nt)
	}
	return NewDetector(nt)
}

type raceKey struct {
	addr uint64
	kind AccessKind
}

// raceSet is the deduplicated race accumulator both detector
// implementations report into: first report per (addr, kind) wins.
type raceSet struct {
	m map[raceKey]*Race
}

func newRaceSet() raceSet { return raceSet{m: make(map[raceKey]*Race)} }

func (rs *raceSet) report(addr uint64, kind AccessKind, a, b int, pcA, pcB uintptr) {
	k := raceKey{addr, kind}
	if _, dup := rs.m[k]; dup {
		return
	}
	rs.m[k] = &Race{
		Addr: addr, Kind: kind, TidA: a, TidB: b,
		SiteA: siteString(pcA), SiteB: siteString(pcB),
		pcA: pcA, pcB: pcB,
	}
}

// sorted returns the races sorted by address then kind.
func (rs *raceSet) sorted() []Race {
	out := make([]Race, 0, len(rs.m))
	for _, r := range rs.m {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// join folds src into dst component-wise (vector-clock join).
func join(dst, src []uint64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// siteString renders an access pc as "file.go:line" with the path
// shortened to its last two components — stable across checkouts, and the
// form the static race report's site IDs reduce to for matching.
func siteString(pc uintptr) string {
	file, line := sim.SitePos(pc)
	if file == "" {
		return "?"
	}
	return fmt.Sprintf("%s:%d", shortPath(file), line)
}

// shortPath keeps the final directory and base name of a source path.
func shortPath(file string) string {
	short := filepath.ToSlash(file)
	parts := strings.Split(short, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// Config drives detection and classification runs.
type Config struct {
	// Threads is the worker thread count.
	Threads int
	// Runs is the number of schedules for detection/classification
	// (default 10).
	Runs int
	// BaseSeed derives schedule seeds.
	BaseSeed int64
	// InputSeed fixes the program input.
	InputSeed int64
	// RoundFP enables FP rounding in state comparison.
	RoundFP bool
}

func (c Config) runs() int {
	if c.Runs == 0 {
		return 10
	}
	return c.Runs
}

// Detect runs the program under several schedules with the detector
// attached and returns the union of races found, attributed to allocation
// sites.
func Detect(build func() sim.Program, cfg Config) ([]Race, error) {
	env := replay.NewEnv(cfg.InputSeed)
	addrLog := replay.NewAddrLog()
	union := make(map[raceKey]Race)
	for run := 0; run < cfg.runs(); run++ {
		det := Selected(cfg.Threads)
		m := sim.NewMachine(sim.Config{
			Threads:      cfg.Threads,
			ScheduleSeed: cfg.BaseSeed + int64(run),
			Scheme:       sim.HWInc,
			RoundFP:      cfg.RoundFP,
			Env:          env,
			AddrLog:      addrLog,
			Events:       det,
		})
		if _, err := m.Run(build()); err != nil {
			return nil, fmt.Errorf("racefilter: detection run %d: %w", run+1, err)
		}
		for _, r := range det.Races() {
			k := raceKey{r.Addr, r.Kind}
			if _, ok := union[k]; !ok {
				if b := m.Mem.BlockAt(r.Addr); b != nil {
					r.Site = b.Site
					r.Offset = int((r.Addr - b.Base) / mem.WordSize)
				} else if b := m.Mem.BlockByBase(r.Addr); b != nil {
					r.Site = b.Site
				} else {
					r.Site = "?"
				}
				union[k] = r
			}
		}
	}
	out := make([]Race, 0, len(union))
	for _, r := range union {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Kind < out[j].Kind
	})
	return out, nil
}

// Verdict classifies one race.
type Verdict struct {
	Race Race
	// Benign is true when no explored schedule produced a final state
	// that disagrees at the racy address (Narayanasamy-style state
	// comparison, done with InstantCheck snapshots).
	Benign bool
	// DistinctValues is the number of distinct final values observed at
	// the address across schedules (1 for benign races on live words).
	DistinctValues int
}

// Classification is the overall §6.1 result.
type Classification struct {
	// Verdicts holds one entry per detected race, ordered as Detect.
	Verdicts []Verdict
	// Deterministic is the program-level InstantCheck verdict across the
	// same schedules: when true, every race is necessarily benign.
	Deterministic bool
}

// BenignCount returns how many races were classified benign.
func (c *Classification) BenignCount() int {
	n := 0
	for _, v := range c.Verdicts {
		if v.Benign {
			n++
		}
	}
	return n
}

// Classify detects races and then classifies each one by comparing the
// final memory states of many schedules at the racy address. A race whose
// address ends with the same value under every explored schedule is
// benign; one whose address diverges is harmful.
//
// Note the approximation (shared with state-comparison classifiers): a
// race whose own address converges but which steers *other* state is
// caught through the program-level Deterministic verdict, not the
// per-address one.
func Classify(build func() sim.Program, cfg Config) (*Classification, error) {
	races, err := Detect(build, cfg)
	if err != nil {
		return nil, err
	}
	env := replay.NewEnv(cfg.InputSeed)
	addrLog := replay.NewAddrLog()
	var snaps []*mem.Snapshot
	deterministic := true
	var firstSH uint64
	for run := 0; run < cfg.runs(); run++ {
		m := sim.NewMachine(sim.Config{
			Threads:      cfg.Threads,
			ScheduleSeed: cfg.BaseSeed + int64(run),
			Scheme:       sim.HWInc,
			RoundFP:      cfg.RoundFP,
			Env:          env,
			AddrLog:      addrLog,
		})
		res, err := m.Run(build())
		if err != nil {
			return nil, fmt.Errorf("racefilter: classify run %d: %w", run+1, err)
		}
		snaps = append(snaps, m.Mem.Snapshot())
		sh := uint64(res.FinalSH())
		if run == 0 {
			firstSH = sh
		} else if sh != firstSH {
			deterministic = false
		}
	}
	cl := &Classification{Deterministic: deterministic}
	for _, r := range races {
		values := make(map[uint64]bool)
		for _, s := range snaps {
			v, live := s.Word(r.Addr)
			if !live {
				continue // freed by run end: not part of the final state
			}
			values[v] = true
		}
		cl.Verdicts = append(cl.Verdicts, Verdict{
			Race:           r,
			Benign:         len(values) <= 1,
			DistinctValues: len(values),
		})
	}
	return cl, nil
}
