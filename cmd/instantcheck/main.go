// Command instantcheck drives the InstantCheck reproduction: it checks the
// determinism of the paper's 17 evaluation workloads and regenerates the
// evaluation tables and figures (MICRO 2010, §7).
//
// Usage:
//
//	instantcheck list                     # the 17 workloads
//	instantcheck check <app> [flags]      # characterize one workload
//	instantcheck table1 [flags]           # Table 1: determinism characteristics
//	instantcheck table2 [flags]           # Table 2: seeded-bug detection
//	instantcheck fig5   [flags]           # Figure 5: nondeterminism distributions
//	instantcheck fig6   [flags]           # Figure 6: instruction-count overheads
//	instantcheck fig8   [flags]           # Figure 8: seeded-bug distributions
//	instantcheck exploreeff [flags]       # exploration-strategy efficiency
//	instantcheck all    [flags]           # everything above
//	instantcheck remote [-server URL] ... # drive a checkd daemon (see remote.go)
//
// Flags: -runs N (default 30), -threads N (default 8), -small (reduced
// inputs), -seed S, -input S.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"instantcheck"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "remote" {
		// The remote client has its own verbs and flags; see remote.go.
		if err := remote(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "instantcheck:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	runs := fs.Int("runs", 30, "test runs per campaign")
	threads := fs.Int("threads", 8, "worker threads per run")
	small := fs.Bool("small", false, "reduced inputs (fast)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	seed := fs.Int64("seed", 0, "base schedule seed")
	input := fs.Int64("input", 0, "input seed for replayed library calls")
	args := os.Args[2:]
	var target string
	if cmd == "check" || cmd == "races" {
		if len(args) == 0 {
			fmt.Fprintf(os.Stderr, "usage: instantcheck %s <app> [flags]\n", cmd)
			os.Exit(2)
		}
		target, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := instantcheck.ExperimentConfig{
		Runs: *runs, Threads: *threads, Small: *small,
		BaseSeed: *seed, InputSeed: *input,
	}

	var err error
	switch cmd {
	case "list":
		err = list()
	case "check":
		err = check(target, cfg)
	case "races":
		err = races(target, cfg)
	case "table1":
		err = table1(cfg, *asJSON)
	case "table2":
		err = table2(cfg, *asJSON)
	case "fig5":
		err = fig5(cfg, *asJSON)
	case "fig6":
		err = fig6(cfg, *asJSON)
	case "fig8":
		err = fig8(cfg, *asJSON)
	case "exploreeff":
		err = exploreeff(cfg, *asJSON)
	case "all":
		for _, f := range []func(instantcheck.ExperimentConfig, bool) error{table1, table2, fig5, fig6, fig8} {
			if err = f(cfg, *asJSON); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "instantcheck:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: instantcheck <list|check <app>|races <app>|table1|table2|fig5|fig6|fig8|exploreeff|all> [-runs N] [-threads N] [-small] [-seed S] [-input S]
       instantcheck remote [-server URL] <submit|status|report|jobs|hashlog|compare|cancel|stats> [args]`)
}

// races runs the §6.1 application: detect data races and classify each
// benign or harmful by state comparison.
func races(name string, cfg instantcheck.ExperimentConfig) error {
	app := instantcheck.WorkloadByName(name)
	if app == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	cl, err := instantcheck.ClassifyRaces(app.Builder(instantcheck.WorkloadOptions{
		Threads: cfg.Threads, Small: cfg.Small,
	}), instantcheck.RaceConfig{
		Threads: orDefault(cfg.Threads, 8), Runs: orDefault(cfg.Runs, 10),
		BaseSeed: cfg.BaseSeed, InputSeed: cfg.InputSeed, RoundFP: app.UsesFP,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d races, %d benign, %d harmful (externally deterministic: %v)\n",
		name, len(cl.Verdicts), cl.BenignCount(), len(cl.Verdicts)-cl.BenignCount(), cl.Deterministic)
	for _, v := range cl.Verdicts {
		verdict := "benign "
		if !v.Benign {
			verdict = "HARMFUL"
		}
		fmt.Printf("  %s %-11s %s+%d (threads %d/%d)\n",
			verdict, v.Race.Kind, v.Race.Site, v.Race.Offset, v.Race.TidA, v.Race.TidB)
	}
	return nil
}

func list() error {
	fmt.Printf("%-14s %-9s %-3s %-14s %s\n", "APP", "SOURCE", "FP", "CLASS", "NOTES")
	for _, a := range instantcheck.Workloads() {
		notes := ""
		if a.HostsBug != instantcheck.BugNone {
			notes = "hosts seeded bug: " + a.HostsBug.String()
		}
		if a.Name == "streamcluster" {
			notes = "carries the real order-violation bug (use FixBug)"
		}
		fmt.Printf("%-14s %-9s %-3s %-14s %s\n", a.Name, a.Source, yn(a.UsesFP), a.ExpectedClass, notes)
	}
	return nil
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

func check(name string, cfg instantcheck.ExperimentConfig) error {
	start := time.Now()
	row, err := instantcheck.Table1For(name, cfg)
	if err != nil {
		return err
	}
	fmt.Print(instantcheck.FormatTable1([]instantcheck.Table1Row{row}))
	fmt.Printf("\nclass: %v   (%.1fs)\n", row.Class, time.Since(start).Seconds())
	if ndet := row.Char.Best().NDetDistGroups(); len(ndet) > 0 {
		fmt.Println("nondeterministic checkpoint distributions:")
		fmt.Print(instantcheck.FormatDistributions([]instantcheck.Distribution{
			{App: name, Groups: ndet},
		}))
	}
	return nil
}

func table1(cfg instantcheck.ExperimentConfig, asJSON bool) error {
	start := time.Now()
	rows, err := instantcheck.Table1(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(table1ToJSON(rows))
	}
	fmt.Printf("Table 1: determinism characteristics (%d runs, %d threads)\n", orDefault(cfg.Runs, 30), orDefault(cfg.Threads, 8))
	fmt.Print(instantcheck.FormatTable1(rows))
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

func table2(cfg instantcheck.ExperimentConfig, asJSON bool) error {
	rows, err := instantcheck.Table2(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(table2ToJSON(rows))
	}
	fmt.Println("Table 2: seeded-bug detection")
	fmt.Print(instantcheck.FormatTable2(rows))
	return nil
}

// exploreeff runs the exploration-efficiency experiment: median
// runs-to-detect for each schedule-exploration strategy on the three
// seeded Figure 7 bugs, at equal budget (-runs is the per-trial budget).
func exploreeff(cfg instantcheck.ExperimentConfig, asJSON bool) error {
	start := time.Now()
	rows, err := instantcheck.ExploreEfficiency(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(exploreeffToJSON(rows))
	}
	fmt.Println("Exploration efficiency: median runs to first State-Hash divergence")
	fmt.Print(instantcheck.FormatExploreEfficiency(rows))
	fmt.Printf("(%.1fs)\n", time.Since(start).Seconds())
	return nil
}

func fig5(cfg instantcheck.ExperimentConfig, asJSON bool) error {
	ds, err := instantcheck.Figure5(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(distToJSON(ds))
	}
	fmt.Println("Figure 5: distribution of nondeterminism points")
	fmt.Print(instantcheck.FormatDistributions(ds))
	return nil
}

func fig6(cfg instantcheck.ExperimentConfig, asJSON bool) error {
	rows, err := instantcheck.Figure6(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(overheadToJSON(rows))
	}
	fmt.Println("Figure 6: instructions executed, normalized to Native")
	fmt.Print(instantcheck.FormatFigure6(rows))
	return nil
}

func fig8(cfg instantcheck.ExperimentConfig, asJSON bool) error {
	ds, err := instantcheck.Figure8(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(distToJSON(ds))
	}
	fmt.Println("Figure 8: seeded-bug nondeterminism distributions")
	fmt.Print(instantcheck.FormatDistributions(ds))
	return nil
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
