package instantcheck

import (
	"fmt"
	"os"
	"testing"

	"instantcheck/internal/racefilter"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§7) at full scale — 30 runs × 8 threads per campaign, the
// paper's setup — and report the wall-clock cost of doing so. Run
//
//	go test -bench=. -benchmem
//
// to reproduce everything; the per-experiment outputs themselves are
// printed by `go run ./cmd/instantcheck all`.

var fullScale = ExperimentConfig{} // zero value = 30 runs, 8 threads, full inputs

// quickScale keeps per-app benchmarks affordable while staying at full
// input size (only the run count shrinks).
var quickScale = ExperimentConfig{Runs: 6}

// BenchmarkTable1 regenerates Table 1 (determinism characteristics of all
// 17 applications: classes, first-nondeterministic run, FP-rounding and
// isolation impact, dynamic det/ndet checking points).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table1(fullScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 17 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkTable1App characterizes each application individually (the
// per-row cost of Table 1), at a reduced run count.
func BenchmarkTable1App(b *testing.B) {
	for _, app := range Workloads() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Table1For(app.Name, quickScale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates Table 2 (detection of the three Figure 7
// seeded bugs: det/ndet points and first detecting run).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table2(fullScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NDetPoints == 0 {
				b.Fatalf("%s: seeded bug not detected", r.App)
			}
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (distributions of distinct states
// per checkpoint group for ocean/sphinx3/canneal).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := Figure5(fullScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) != 3 {
			b.Fatal("figure 5 shape")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 (instruction counts of Native /
// HW-Inc / SW-Inc-Ideal / SW-Tr-Ideal, normalized to Native, plus GEOM).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Figure6(fullScale)
		if err != nil {
			b.Fatal(err)
		}
		geo := rows[len(rows)-1]
		if geo.HWInc > 1.02 {
			b.Fatalf("HW-Inc geomean %.4f; the paper reports ≈1.003", geo.HWInc)
		}
	}
}

// BenchmarkFigure6Deletion regenerates the sphinx3 deletion study (§7.3:
// 4.5×/55×/438× in the paper; ordering HW ≪ SW-Inc ≪ SW-Tr).
func BenchmarkFigure6Deletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ov, err := Figure6Deletion(fullScale)
		if err != nil {
			b.Fatal(err)
		}
		if !(ov.HWInc < ov.SWIncIdeal && ov.SWIncIdeal < ov.SWTrIdeal) {
			b.Fatalf("deletion ordering violated: %+v", ov)
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (nondeterminism distributions for
// the seeded bugs).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := Figure8(fullScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) != 3 {
			b.Fatal("figure 8 shape")
		}
	}
}

// BenchmarkCheckApp measures one full checking campaign (30 runs) per
// workload under HW-InstantCheck_Inc — the paper's primary configuration.
func BenchmarkCheckApp(b *testing.B) {
	for _, app := range Workloads() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := Campaign{Runs: 30, Threads: 8, RoundFP: app.UsesFP, Ignore: app.IgnoreSet()}
				if _, err := Check(camp, app.Builder(WorkloadOptions{})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckAppTr measures one full checking campaign (30 runs) per
// workload under SW-InstantCheck_Tr, the scheme whose checkpoint sweeps
// dirty-page delta hashing accelerates. Setting ICHECK_TRAVERSE_DELTA=off
// pins every checkpoint to the pre-delta full sweep; because the benchmark
// names stay identical, the two settings feed benchjson's interleaved-A/B
// sections directly (see make bench-json).
func BenchmarkCheckAppTr(b *testing.B) {
	mode := TraverseDeltaAuto
	if os.Getenv("ICHECK_TRAVERSE_DELTA") == "off" {
		mode = TraverseDeltaOff
	}
	for _, app := range Workloads() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := Campaign{
					Runs: 30, Threads: 8, Scheme: SWTr,
					RoundFP: app.UsesFP, Ignore: app.IgnoreSet(),
					TraverseDelta: mode,
				}
				if _, err := Check(camp, app.Builder(WorkloadOptions{})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckAppSWInc measures one full checking campaign (30 runs) per
// workload under SW-InstantCheck_Inc, the scheme whose per-store software
// hashing the per-thread store buffer batches. Setting
// ICHECK_STORE_BUFFER=off pins every store to the pre-buffer inline path;
// the benchmark names stay identical, so the two settings feed benchjson's
// interleaved-A/B sections directly (see make bench-json). Buffered runs
// assert the batch path was actually exercised — the bench-smoke gate
// against silently benchmarking the inline path twice.
func BenchmarkCheckAppSWInc(b *testing.B) {
	words := 0 // auto
	if os.Getenv("ICHECK_STORE_BUFFER") == "off" {
		words = -1
	}
	for _, app := range Workloads() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := Campaign{
					Runs: 30, Threads: 8, Scheme: SWInc,
					RoundFP: app.UsesFP, Ignore: app.IgnoreSet(),
					StoreBufferWords: words,
				}
				rep, err := Check(camp, app.Builder(WorkloadOptions{}))
				if err != nil {
					b.Fatal(err)
				}
				var flushes uint64
				for _, r := range rep.Runs {
					flushes += r.MHMStats.BufferFlushes
				}
				if words == 0 && flushes == 0 {
					b.Fatal("buffered campaign never drained a store buffer")
				}
				if words < 0 && flushes != 0 {
					b.Fatal("inline campaign drained a store buffer")
				}
			}
		})
	}
}

// BenchmarkDetectorRun measures one happens-before detection run per
// workload — a fresh detector and machine per iteration, the cross-check's
// configuration (4 threads, small inputs) — against the identical run with
// no listener attached (detector=off, the plain-check-run control).
// Setting ICHECK_RACE_DETECTOR=vc swaps in the vector-clock reference
// while the benchmark names stay identical, so the two settings feed
// benchjson's interleaved-A/B sections directly (see make
// bench-detect-json). Default runs assert the epoch detector actually
// observed the run's accesses — the gate against silently benchmarking
// the reference twice.
func BenchmarkDetectorRun(b *testing.B) {
	useVC := os.Getenv(racefilter.EnvDetector) == "vc"
	for _, app := range Workloads() {
		app := app
		build := app.Builder(WorkloadOptions{Threads: 4, Small: true})
		for _, mode := range []string{"on", "off"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/detector=%s", app.Name, mode), func(b *testing.B) {
				env := replay.NewEnv(1)
				addrLog := replay.NewAddrLog()
				for i := 0; i < b.N; i++ {
					cfg := sim.Config{
						Threads: 4, ScheduleSeed: int64(i + 1),
						Scheme: sim.HWInc, Env: env, AddrLog: addrLog,
					}
					var det racefilter.HB
					if mode == "on" {
						det = racefilter.Selected(4)
						cfg.Events = det
					}
					m := sim.NewMachine(cfg)
					if _, err := m.Run(build()); err != nil {
						b.Fatal(err)
					}
					if det == nil {
						continue
					}
					eps, isEpoch := det.(*racefilter.Detector)
					if !useVC && !isEpoch {
						b.Fatal("default detector is not the epoch implementation")
					}
					if isEpoch {
						// Nonzero access counts prove the epoch shadow pages saw
						// this run's events. Fast-path hits are app-dependent
						// (barrier-phased apps can touch every word exactly once
						// per epoch), so bench-smoke pins ReadFast on a workload
						// with same-epoch repeats rather than asserting it here.
						st := eps.Stats()
						if st.ReadFast+st.ReadSlow+st.WriteFast+st.WriteSlow == 0 {
							b.Fatal("epoch detector saw no accesses")
						}
					}
				}
			})
		}
	}
}

// BenchmarkHasherAblation compares the two location hashes on a real
// checking campaign — the design-choice ablation for DESIGN.md's "h is
// pluggable" decision. Both must yield identical verdicts.
func BenchmarkHasherAblation(b *testing.B) {
	app := WorkloadByName("fft")
	for _, h := range []struct {
		name string
		h    Hasher
	}{{"mix64", NewMix64Hasher()}, {"crc64", NewCRC64Hasher()}} {
		h := h
		b.Run(h.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := Campaign{Runs: 10, Threads: 8, Hasher: h.h}
				rep, err := Check(camp, app.Builder(WorkloadOptions{}))
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Deterministic() {
					b.Fatal("verdict changed under hasher ablation")
				}
			}
		})
	}
}

// BenchmarkSchemeAblation compares the runtime cost of the machine itself
// under each hashing scheme on one workload — the simulator-level analogue
// of Figure 6 (which models target-machine instructions instead).
func BenchmarkSchemeAblation(b *testing.B) {
	app := WorkloadByName("ocean")
	for _, scheme := range []Scheme{Native, HWInc, SWInc, SWTr} {
		scheme := scheme
		b.Run(fmt.Sprint(scheme), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := NewMachine(MachineConfig{
					Threads: 8, ScheduleSeed: int64(i), Scheme: scheme,
					RoundFP: true,
				})
				if _, err := m.Run(app.Build(WorkloadOptions{Small: true})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystematicPruning measures the §6.2 application: exploring the
// schedule tree of a lock-commutative program with and without state-hash
// pruning. The pruned run must cover the same final states in far fewer
// schedules.
func BenchmarkSystematicPruning(b *testing.B) {
	app := WorkloadByName("radix")
	build := app.Builder(WorkloadOptions{Threads: 2, Small: true})
	for _, prune := range []bool{false, true} {
		prune := prune
		name := "unpruned"
		if prune {
			name = "pruned"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Systematic(build, SystematicOptions{
					Threads: 2, MaxRuns: 200, MaxDecisions: 10, Prune: prune,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Deterministic() {
					b.Fatal("verdict")
				}
			}
		})
	}
}

// BenchmarkReplaySearch measures the §6.3 application: searching candidate
// schedules against a recorded hash log with early mismatch cutoff.
func BenchmarkReplaySearch(b *testing.B) {
	app := WorkloadByName("waterSP")
	build := app.Builder(WorkloadOptions{Threads: 4, Small: true, Bug: BugAtomicity})
	log, err := RecordReplayLog(build, ReplayConfig{Threads: 4, RoundFP: true}, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.Search(build, int64(1000+i*100), 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRaceClassification measures the §6.1 application end to end on
// volrend (detection + benign/harmful classification).
func BenchmarkRaceClassification(b *testing.B) {
	app := WorkloadByName("volrend")
	build := app.Builder(WorkloadOptions{Threads: 4, Small: true})
	for i := 0; i < b.N; i++ {
		cl, err := ClassifyRaces(build, RaceConfig{Threads: 4, Runs: 8})
		if err != nil {
			b.Fatal(err)
		}
		if cl.BenignCount() != len(cl.Verdicts) {
			b.Fatal("volrend races must all be benign")
		}
	}
}

// BenchmarkFarmThroughput compares a checking campaign executed
// sequentially (the paper's loop: one run after another) against the
// checkfarm's parallel worker pool on the same campaign. Runs of a
// campaign are independent once the recording run finishes, so wall-clock
// should shrink toward 1/Parallelism while the report stays identical —
// the farm's run-level scaling claim.
func BenchmarkFarmThroughput(b *testing.B) {
	app := WorkloadByName("radix")
	for _, par := range []int{1, 2, 4, 8} {
		par := par
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := Campaign{Runs: 30, Threads: 8, Parallelism: par}
				rep, err := Check(camp, app.Builder(WorkloadOptions{}))
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Deterministic() {
					b.Fatal("radix verdict changed under parallel execution")
				}
			}
		})
	}
}

// BenchmarkSwitchIntervalAblation measures how the scheduler's preemption
// density affects checking cost (and confirms verdicts are stable across
// it).
func BenchmarkSwitchIntervalAblation(b *testing.B) {
	app := WorkloadByName("radix")
	for _, interval := range []int{1, 4, 16, 64} {
		interval := interval
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp := Campaign{Runs: 6, Threads: 8, SwitchInterval: interval}
				rep, err := Check(camp, app.Builder(WorkloadOptions{}))
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Deterministic() {
					b.Fatal("radix verdict changed with preemption density")
				}
			}
		})
	}
}
