// Package ihash implements the incremental memory-state hashing scheme at
// the heart of InstantCheck (Nistor, Marinov, Torrellas — MICRO 2010).
//
// A program memory state S with values v1..vm at addresses a1..am is
// summarized by its State Hash
//
//	SH(S) = h(a1,v1) ⊕ h(a2,v2) ⊕ ... ⊕ h(am,vm)
//
// where h is a conventional hash of one (address, value) pair and ⊕ is
// addition modulo 2^64. Because modulo addition is commutative and
// associative, and modulo subtraction cancels it, the hash can be maintained
// incrementally as the program writes memory:
//
//	SH(S') = SH(S) ⊖ h(a, v_old) ⊕ h(a, v_new)
//
// This is the incremental-hashing construction of Bellare and Micciancio
// (Eurocrypt 1997), which has the same collision resistance as conventional
// hashing: false positives are impossible and the false-negative probability
// for a 64-bit hash is 2^-64 per comparison.
//
// The package provides the location hash h, the ⊕/⊖ group operations, and
// the Digest type that represents a Thread Hash (TH) or State Hash (SH)
// value. Digests from different threads combine with Digest.Combine exactly
// as the paper combines per-core TH registers into SH.
package ihash

import (
	"fmt"
	"hash/crc64"
)

// Digest is a 64-bit incremental hash value: a Thread Hash (TH) accumulated
// by one thread, or a State Hash (SH) obtained by combining Thread Hashes.
// The zero Digest is the hash of the empty (all-untracked) state.
//
// Digest forms an abelian group under Combine (⊕, modulo-2^64 addition),
// with Negate producing inverses. Two memory states hash to equal Digests
// whenever they contain the same multiset of (address, value) pairs.
type Digest uint64

// Zero is the Digest of the empty state.
const Zero Digest = 0

// Combine returns d ⊕ o: the digest of the union of the two underlying
// (address, value) multisets. It is commutative and associative.
func (d Digest) Combine(o Digest) Digest { return d + o }

// Subtract returns d ⊖ o, cancelling a previous Combine with o.
func (d Digest) Subtract(o Digest) Digest { return d - o }

// Negate returns the inverse of d under Combine: d.Combine(d.Negate()) == Zero.
func (d Digest) Negate() Digest { return -d }

// String formats the digest the way the paper's prototype prints hashes.
func (d Digest) String() string { return fmt.Sprintf("%016x", uint64(d)) }

// Hasher computes the location hash h(addr, value) for one memory word.
// Implementations must be deterministic pure functions. InstantCheck's
// correctness requires only that h behave like a good conventional hash;
// the incremental structure comes from the ⊕ group, not from h.
type Hasher interface {
	// HashWord returns h(addr, value) for an 8-byte word.
	HashWord(addr, value uint64) Digest
	// Name identifies the hash function (for reports and debugging).
	Name() string
}

// Mix64 is the default Hasher: a double application of the SplitMix64/
// Murmur3 finalizer over the (address, value) pair. It is fast (a handful of
// multiplies and shifts — the role the paper assigns to the MHM hash unit)
// and passes avalanche tests: flipping any input bit flips each output bit
// with probability ≈ 1/2, which keeps the ⊕-accumulated state hash
// collision-resistant.
type Mix64 struct{}

// HashWord implements Hasher.
func (Mix64) HashWord(addr, value uint64) Digest {
	// Inject the address, mix, inject the value, mix again. The odd
	// constants are the SplitMix64 increments/multipliers.
	x := addr ^ 0x9e3779b97f4a7c15
	x = mix64(x)
	x ^= value
	x = mix64(x)
	return Digest(x | 1) // never zero: h(a,v) == 0 would make a word invisible
}

// Name implements Hasher.
func (Mix64) Name() string { return "mix64" }

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CRC64 is an alternative Hasher built on the ECMA CRC-64 polynomial — the
// paper repeatedly gives CRC as its example of the conventional hash h fed
// into the incremental scheme. It is slower than Mix64 and exists for
// cross-validation: any Hasher must yield the same determinism verdicts.
type CRC64 struct{}

var crcTable = crc64.MakeTable(crc64.ECMA)

// HashWord implements Hasher.
func (CRC64) HashWord(addr, value uint64) Digest {
	var buf [16]byte
	putUint64(buf[0:8], addr)
	putUint64(buf[8:16], value)
	c := crc64.Checksum(buf[:], crcTable)
	// Post-mix: raw CRC is linear over GF(2), which interacts poorly with
	// the ⊕ (mod 2^64) group for adversarial inputs; one finalizer round
	// restores avalanche without losing the "CRC in front" structure.
	return Digest(mix64(c) | 1)
}

// Name implements Hasher.
func (CRC64) Name() string { return "crc64-ecma" }

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Accumulator maintains a Digest incrementally. It is the software analogue
// of the MHM's TH register: Write applies the ⊖old ⊕new update for one
// store, Insert/Erase add or remove a single (addr, value) pair, and Value
// reads the current digest. An Accumulator is not safe for concurrent use;
// in InstantCheck each thread owns one, matching the per-core TH register.
type Accumulator struct {
	h Hasher
	d Digest
}

// NewAccumulator returns an Accumulator using h, starting from the empty
// state. A nil h selects Mix64.
func NewAccumulator(h Hasher) *Accumulator {
	if h == nil {
		h = Mix64{}
	}
	return &Accumulator{h: h}
}

// Write records that the word at addr changed from old to new:
// d = d ⊖ h(addr, old) ⊕ h(addr, new).
func (a *Accumulator) Write(addr, old, new uint64) {
	a.d = a.d.Subtract(a.h.HashWord(addr, old)).Combine(a.h.HashWord(addr, new))
}

// Insert adds the pair (addr, value) to the underlying multiset:
// d = d ⊕ h(addr, value). Used when a word enters the tracked state.
func (a *Accumulator) Insert(addr, value uint64) {
	a.d = a.d.Combine(a.h.HashWord(addr, value))
}

// Erase removes the pair (addr, value) from the underlying multiset:
// d = d ⊖ h(addr, value). Used when a word leaves the tracked state
// (free) or is deleted from the hash via the paper's minus_hash operation.
func (a *Accumulator) Erase(addr, value uint64) {
	a.d = a.d.Subtract(a.h.HashWord(addr, value))
}

// Value returns the current digest.
func (a *Accumulator) Value() Digest { return a.d }

// SetValue overwrites the digest, implementing the restore_hash instruction.
func (a *Accumulator) SetValue(d Digest) { a.d = d }

// Reset returns the accumulator to the empty state.
func (a *Accumulator) Reset() { a.d = Zero }

// Hasher returns the location hash in use.
func (a *Accumulator) Hasher() Hasher { return a.h }

// CombineAll folds a set of per-thread digests into a State Hash, as
// InstantCheck's software does at barriers: SH = TH_0 ⊕ TH_1 ⊕ ... .
func CombineAll(ths ...Digest) Digest {
	var sh Digest
	for _, th := range ths {
		sh = sh.Combine(th)
	}
	return sh
}
