// Command primitive demonstrates the three other applications of the fast
// state-comparison primitive the paper outlines in §6, beyond determinism
// checking:
//
//   - §6.1 filtering out benign data races: volrend's hand-coded barrier
//     contains a true race that never changes the outcome; canneal's racy
//     cost reads steer the final placement. The filter tells them apart by
//     comparing states, not access patterns.
//   - §6.2 systematic testing: enumerating the schedule tree of a
//     lock-commutative program, with and without state-hash pruning at
//     quiescent checkpoints.
//   - §6.3 deterministic replay: recording a per-checkpoint hash log of a
//     nondeterministic execution, then searching candidate schedules —
//     diverging candidates die at their first mismatching checkpoint, and
//     a match provably reproduces the entire state.
package main

import (
	"fmt"
	"log"

	"instantcheck"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
)

func main() {
	raceFiltering()
	systematicTesting()
	replayAssist()
}

func raceFiltering() {
	fmt.Println("== §6.1 filtering out benign data races ==")
	for _, name := range []string{"volrend", "canneal"} {
		app := instantcheck.WorkloadByName(name)
		cl, err := instantcheck.ClassifyRaces(
			app.Builder(instantcheck.WorkloadOptions{Threads: 4, Small: true}),
			instantcheck.RaceConfig{Threads: 4, Runs: 10},
		)
		if err != nil {
			log.Fatal(err)
		}
		benign := cl.BenignCount()
		fmt.Printf("%-10s %2d races detected, %d benign, %d harmful (externally deterministic: %v)\n",
			name+":", len(cl.Verdicts), benign, len(cl.Verdicts)-benign, cl.Deterministic)
		for i, v := range cl.Verdicts {
			if i == 3 {
				fmt.Println("           …")
				break
			}
			verdict := "BENIGN "
			if !v.Benign {
				verdict = "HARMFUL"
			}
			fmt.Printf("           %s %-11s at %s+%d\n", verdict, v.Race.Kind, v.Race.Site, v.Race.Offset)
		}
	}
	fmt.Println()
}

// commutative is the Figure 1 pattern iterated over rounds with barriers.
type commutative struct {
	rounds int
	g      uint64
	mu     *sched.Mutex
	bar    *sched.Barrier
}

func (p *commutative) Name() string { return "commutative" }
func (p *commutative) Threads() int { return 2 }
func (p *commutative) Setup(t *instantcheck.Thread) {
	p.g = t.AllocStatic("static:G", 1, mem.KindWord)
	t.Store(p.g, 2)
	p.mu = t.Machine().NewMutex("G")
	p.bar = t.Machine().NewBarrier("round")
}
func (p *commutative) Worker(t *instantcheck.Thread) {
	l := []uint64{7, 3}[t.TID()]
	for r := 0; r < p.rounds; r++ {
		t.Lock(p.mu)
		t.Store(p.g, t.Load(p.g)+l)
		t.Unlock(p.mu)
		t.BarrierWait(p.bar)
	}
}

func systematicTesting() {
	fmt.Println("== §6.2 systematic testing with state-hash pruning ==")
	build := func() instantcheck.Program { return &commutative{rounds: 3} }
	opts := instantcheck.SystematicOptions{Threads: 2, PreemptEvery: 2, MaxRuns: 100000}
	full, err := instantcheck.Systematic(build, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Prune = true
	pruned, err := instantcheck.Systematic(build, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without pruning: %6d schedules to exhaust the tree (%d final states)\n",
		full.Runs, len(full.FinalStates))
	fmt.Printf("with pruning:    %6d schedules, %d cut at visited states (%d final states)\n",
		pruned.Runs, pruned.PrunedRuns, len(pruned.FinalStates))
	fmt.Println("happens-before pruning could not merge these schedules: the two")
	fmt.Println("lock orders have different happens-before but identical states.")
	fmt.Println()
}

func replayAssist() {
	fmt.Println("== §6.3 deterministic replay assisted by hash logs ==")
	app := instantcheck.WorkloadByName("waterSP")
	build := app.Builder(instantcheck.WorkloadOptions{Threads: 4, Small: true, Bug: instantcheck.BugAtomicity})
	logRec, err := instantcheck.RecordReplayLog(build, instantcheck.ReplayConfig{Threads: 4, RoundFP: true}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded a buggy waterSP run: %d checkpoint hashes (%d bytes of log)\n",
		len(logRec.Hashes), 8*len(logRec.Hashes))
	res, err := logRec.Search(build, 1000, 300)
	if err != nil {
		log.Fatal(err)
	}
	worst := len(res.Attempts) * len(logRec.Hashes)
	fmt.Printf("searched %d candidate schedules: full-state replay found = %v\n", len(res.Attempts), res.Found)
	if res.Found {
		fmt.Printf("matching schedule seed: %d\n", res.Seed)
	}
	fmt.Printf("early cutoff executed %d of %d worst-case checkpoints (%.0f%% saved)\n",
		res.CheckpointsExecuted, worst, 100*(1-float64(res.CheckpointsExecuted)/float64(worst)))
}
