package explore

import (
	"testing"

	"instantcheck/internal/apps"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

// rareRaceProg has a narrow lost-update window: each round a thread runs
// filler loads and then one unlocked read-modify-write of a shared
// counter. A schedule only changes the outcome when a preemption lands
// between the load and the store AND the other thread increments in the
// gap, so runs-to-detect is genuinely schedule-seed dependent — the shape
// the strategy comparisons need.
type rareRaceProg struct {
	nt, rounds, filler int
	g, pad             uint64
}

func (p *rareRaceProg) Name() string { return "rareRace" }
func (p *rareRaceProg) Threads() int { return p.nt }
func (p *rareRaceProg) Setup(t *sim.Thread) {
	p.g = t.AllocStatic("static:G", 1, mem.KindWord)
	p.pad = t.AllocStatic("static:P", 1, mem.KindWord)
}
func (p *rareRaceProg) Worker(t *sim.Thread) {
	for r := 0; r < p.rounds; r++ {
		for i := 0; i < p.filler; i++ {
			t.Load(p.pad)
		}
		v := t.Load(p.g) // racy window opens
		t.Store(p.g, v+1)
	}
}

func buildRareRace() sim.Program {
	return &rareRaceProg{nt: 2, rounds: 6, filler: 40}
}

// TestNewStrategyRegistry checks every wire name resolves and junk is
// rejected.
func TestNewStrategyRegistry(t *testing.T) {
	o := Options{Threads: 2}
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name, o, 0)
		if err != nil {
			t.Fatalf("NewStrategy(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("NewStrategy(%q).Name() = %q", name, s.Name())
		}
	}
	if s, err := NewStrategy("", o, 0); err != nil || s.Name() != "uniform" {
		t.Errorf("empty name should default to uniform, got %v, %v", s, err)
	}
	if _, err := NewStrategy("bogus", o, 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestExploreDeterministicProgram checks no strategy invents
// nondeterminism: a fully locked, barrier-synchronized program must run
// the whole budget without a divergence under every strategy.
func TestExploreDeterministicProgram(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 3} }
	o := Options{Threads: 2, SwitchInterval: 4}
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name, o, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Explore(build, o, s, 6, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Found {
			t.Errorf("%s: false positive at run %d", name, out.DivergedRun)
		}
		if out.Runs != 6 {
			t.Errorf("%s: ran %d of budget 6 without finding anything", name, out.Runs)
		}
		if out.DistinctFinals != 1 {
			t.Errorf("%s: %d distinct final hashes on a deterministic program", name, out.DistinctFinals)
		}
	}
}

// TestExploreFixedSeedDeterministic checks the exploration itself is
// reproducible: same base seed, same campaign, run for run — and that the
// base seed actually matters (different bases explore different schedule
// sequences, so runs-to-detect varies).
func TestExploreFixedSeedDeterministic(t *testing.T) {
	o := Options{Threads: 2, SwitchInterval: 16, ScheduleSeed: 42}
	a, err := Explore(buildRareRace, o, Uniform(o.ScheduleSeed), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(buildRareRace, o, Uniform(o.ScheduleSeed), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed, different outcomes: %+v vs %+v", a, b)
	}

	runs := make(map[int]bool)
	for base := int64(0); base < 8; base++ {
		out, err := Explore(buildRareRace, Options{Threads: 2, SwitchInterval: 16}, Uniform(base), 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Found {
			continue
		}
		runs[out.DivergedRun] = true
	}
	if len(runs) < 2 {
		t.Errorf("8 base seeds produced runs-to-detect %v — base seed is not reaching the schedules", runs)
	}
}

// TestFindNondeterminismSeedPlumbing pins the Options.ScheduleSeed fix:
// FindNondeterminism at a fixed base is reproducible, and different bases
// really change the schedule sequence.
func TestFindNondeterminismSeedPlumbing(t *testing.T) {
	o := Options{Threads: 2, SwitchInterval: 16, ScheduleSeed: 7}
	a, err := FindNondeterminism(buildRareRace, o, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindNondeterminism(buildRareRace, o, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || a.Found != b.Found {
		t.Errorf("same base seed, different results: %+v vs %+v", a, b)
	}

	runs := make(map[int]bool)
	for base := int64(0); base < 8; base++ {
		o := Options{Threads: 2, SwitchInterval: 16, ScheduleSeed: base}
		res, err := FindNondeterminism(buildRareRace, o, nil, 50)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			runs[res.Runs] = true
		}
	}
	if len(runs) < 2 {
		t.Errorf("8 base seeds all detected at the same run %v — base seed is not plumbed through", runs)
	}
}

// TestPCTStrategyCalibrates checks the two-phase PCT flow: run 0 is a
// uniform calibration run whose scheduler-op count becomes the
// change-point budget, and later runs carry PCT deciders.
func TestPCTStrategyCalibrates(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 3} }
	s := NewPCTStrategy(2, 0, 3, 0)
	out, err := Explore(build, Options{Threads: 2}, s, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found {
		t.Error("false positive on the commutative program")
	}
	ps := s.(*pctStrategy)
	if ps.estimate == 0 {
		t.Error("calibration run did not record a scheduler-op budget")
	}
	if p := s.Plan(1); p.Decider == nil {
		t.Error("post-calibration runs should carry a PCT decider")
	}
}

// TestCoverageStrategyFindsRareRace checks the coverage loop end to end:
// the recording decider, the frontier, and prefix replay all compose into
// a campaign that still detects the rare lost update.
func TestCoverageStrategyFindsRareRace(t *testing.T) {
	o := Options{Threads: 2, SwitchInterval: 16}
	s := CoverageGuided(2, 0, o.SwitchInterval)
	out, err := Explore(buildRareRace, o, s, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatalf("coverage-guided search missed the lost update in %d runs", out.Runs)
	}
	if out.DistinctOutcomes < 2 {
		t.Errorf("found a divergence but recorded %d distinct outcomes", out.DistinctOutcomes)
	}
}

// TestRaceDirectedStrategyDynamicHints checks the no-static-hints path:
// the first runs execute under the happens-before detector, the racy
// sites it reports become preemption hints, and the directed runs surface
// the Figure 7(b) bug that uniform search misses at the same budget.
func TestRaceDirectedStrategyDynamicHints(t *testing.T) {
	build := func() sim.Program {
		return apps.ByName("waterSP").Build(apps.Options{
			Threads: 4, Small: true, Bug: apps.BugAtomicity,
		})
	}
	// Long switch interval: random preemptions rarely land inside the
	// ~4-op unlocked read-modify-write, so hints are what finds it.
	o := Options{Threads: 4, RoundFP: true, InputSeed: 1, SwitchInterval: 4000}
	const budget = 40

	s := RaceDirected(4, 0, nil)
	out, err := Explore(build, o, s, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatalf("dynamic race-directed search missed the bug in %d runs", out.Runs)
	}
	if out.Hits == 0 {
		t.Error("no directed preemptions fired: detector-to-hint plumbing is broken")
	}
	if len(s.(*raceDirectedStrategy).sites) == 0 {
		t.Error("detection runs harvested no racy sites")
	}
	t.Logf("dynamic hints: found at run %d with %d directed preemptions, %d hinted sites",
		out.DivergedRun, out.Hits, len(s.(*raceDirectedStrategy).sites))
}

// TestExploreOnRunHook checks the per-run callback sees every executed
// run and can abort the campaign.
func TestExploreOnRunHook(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 2} }
	var seen []int
	out, err := Explore(build, Options{Threads: 2}, Uniform(0), 3,
		func(run int, res *sim.Result) error {
			if res == nil {
				t.Fatal("nil result in onRun")
			}
			seen = append(seen, run)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs != 3 || len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Errorf("onRun saw %v for %d runs", seen, out.Runs)
	}
}
