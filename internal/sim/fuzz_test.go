package sim

import (
	"testing"

	"instantcheck/internal/replay"
)

// FuzzIncrementalEqualsTraversal fuzzes the central invariant over program
// shapes and schedules: the incrementally maintained State Hash equals the
// traversal hash at every checkpoint.
func FuzzIncrementalEqualsTraversal(f *testing.F) {
	f.Add(uint64(1), int64(1))
	f.Add(uint64(0xdeadbeef), int64(-7))
	f.Fuzz(func(t *testing.T, progSeed uint64, schedSeed int64) {
		log := replay.NewAddrLog()
		inc := runFuzz(t, HWInc, progSeed, schedSeed, log)
		tr := runFuzz(t, SWTr, progSeed, schedSeed, log)
		if len(inc.Checkpoints) != len(tr.Checkpoints) {
			t.Fatalf("checkpoint counts differ: %d vs %d", len(inc.Checkpoints), len(tr.Checkpoints))
		}
		for i := range inc.Checkpoints {
			if inc.Checkpoints[i].SH != tr.Checkpoints[i].SH {
				t.Fatalf("checkpoint %d: %s vs %s", i, inc.Checkpoints[i].SH, tr.Checkpoints[i].SH)
			}
		}
	})
}
