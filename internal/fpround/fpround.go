// Package fpround models the MHM's floating-point round-off unit (paper
// §3.1, §5). Parallel programs that reduce FP values in interleaving-
// dependent order produce results that differ in the low mantissa bits from
// run to run; bit-by-bit state comparison would flag all of them as
// nondeterministic. InstantCheck therefore optionally rounds FP values
// before hashing. The paper offers expert programmers two policies:
//
//   - zero out the least-significant M bits of the mantissa — discards small
//     *relative* differences (implemented as an AND mask, as in hardware);
//   - floor to the number with only N decimal digits — discards small
//     *absolute* differences (the x86-rounding-style operation used in
//     systematic testing).
//
// The default used throughout the paper's evaluation is rounding to the
// closest 0.001, i.e. FloorDecimal(3).
package fpround

import (
	"fmt"
	"math"
)

// Mode selects the rounding policy.
type Mode int

const (
	// Off performs no rounding: FP values are hashed bit-by-bit.
	Off Mode = iota
	// ZeroMantissa clears the M least-significant mantissa bits.
	ZeroMantissa
	// FloorDecimal floors the value to N decimal digits.
	FloorDecimal
)

// String returns the policy name.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case ZeroMantissa:
		return "zero-mantissa"
	case FloorDecimal:
		return "floor-decimal"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Policy is a configured round-off unit. The zero Policy is Off.
// Policies are immutable values and safe for concurrent use.
type Policy struct {
	mode Mode
	// param is M (mantissa bits) for ZeroMantissa, N (decimal digits) for
	// FloorDecimal.
	param int
	// scale caches 10^param for FloorDecimal and cut caches 2^52/scale
	// (the magnitude beyond which values are already on the rounding grid)
	// so the per-word Round path never recomputes them. 0 means "not
	// precomputed" (a Policy built as a raw literal rather than via
	// NewFloorDecimal); Round falls back to computing them on the fly.
	scale float64
	cut   float64
}

// None is the disabled policy: values pass through unchanged.
var None = Policy{}

// Default is the paper's default: round to the closest 0.001 (§5),
// implemented as FloorDecimal with N = 3.
var Default = NewFloorDecimal(3)

// NewZeroMantissa returns a policy that zeroes the m least-significant
// mantissa bits of an IEEE-754 double. m is clamped to [0, 52].
func NewZeroMantissa(m int) Policy {
	if m < 0 {
		m = 0
	}
	if m > 52 {
		m = 52
	}
	return Policy{mode: ZeroMantissa, param: m}
}

// NewFloorDecimal returns a policy that floors values to n decimal digits.
// n is clamped to [0, 15] (beyond 15 digits a float64 has no room to care).
func NewFloorDecimal(n int) Policy {
	if n < 0 {
		n = 0
	}
	if n > 15 {
		n = 15
	}
	scale := pow10(n)
	return Policy{mode: FloorDecimal, param: n, scale: scale, cut: float64(uint64(1)<<52) / scale}
}

// Mode reports the policy's rounding mode.
func (p Policy) Mode() Mode { return p.mode }

// Param returns M for ZeroMantissa or N for FloorDecimal, 0 for Off.
func (p Policy) Param() int { return p.param }

// Enabled reports whether the policy changes any value.
func (p Policy) Enabled() bool { return p.mode != Off }

// Round applies the policy to one float64 value.
//
// NaNs are canonicalized to a single quiet NaN bit pattern whenever rounding
// is enabled, because distinct NaN payloads are exactly the kind of
// insignificant bit-level difference the unit exists to discard. Infinities
// pass through unchanged.
func (p Policy) Round(v float64) float64 {
	switch p.mode {
	case Off:
		return v
	case ZeroMantissa:
		if math.IsNaN(v) {
			return canonicalNaN()
		}
		bits := math.Float64bits(v)
		mask := ^uint64(0) << uint(p.param)
		// Clear only mantissa bits; sign and exponent are untouched.
		mantMask := mask | ^uint64(1<<52-1)
		return math.Float64frombits(bits & mantMask)
	case FloorDecimal:
		if math.IsNaN(v) {
			return canonicalNaN()
		}
		if math.IsInf(v, 0) {
			return v
		}
		scale, cut := p.scale, p.cut
		if scale == 0 {
			scale = pow10(p.param)
			cut = float64(uint64(1)<<52) / scale
		}
		if math.Abs(v) >= cut {
			// The value's ULP is at least one bucket: it is already on
			// (or beyond) the rounding grid, and scaling would lose bits.
			// Passing it through keeps Round idempotent.
			return v
		}
		// k is the bucket index: the largest integer with k/scale <= v.
		// math.Floor(v*scale) can be off by one because the product
		// rounds; the two corrections below pin k exactly in division
		// space, which makes Round exactly idempotent.
		k := math.Floor(v * scale)
		if k/scale > v {
			k--
		}
		if (k+1)/scale <= v {
			k++
		}
		r := k / scale
		if r == 0 {
			// Avoid the -0.0 vs +0.0 bit difference after flooring.
			return 0
		}
		return r
	default:
		return v
	}
}

// RoundBits applies the policy to the raw IEEE-754 bit pattern of a word
// known to hold a float64 — the form in which the MHM sees Data_old and
// Data_new on the cache-update wires.
func (p Policy) RoundBits(bits uint64) uint64 {
	if p.mode == Off {
		return bits
	}
	return math.Float64bits(p.Round(math.Float64frombits(bits)))
}

func canonicalNaN() float64 {
	return math.Float64frombits(0x7ff8000000000000)
}

// pow10 returns 10^n for small non-negative n without math.Pow's rounding
// wobble.
func pow10(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 10
	}
	return r
}
