package apps

import (
	"reflect"
	"testing"

	"instantcheck/internal/core"
	"instantcheck/internal/sim"
)

// TestStoreBufferMatchesInline runs every workload's checking campaign
// under SW-InstantCheck_Inc twice — per-thread store-buffer batching vs
// inline per-store hashing — and requires byte-identical reports: the same
// raw and ignore-adjusted State Hash at every checkpoint of every run, the
// same distributions, the same verdicts. This is the store buffer's
// end-to-end correctness contract (coalesced drains must reproduce the
// exact digests, not merely the verdicts), checked across all 17 apps'
// allocation, free, FP-rounding and ignore-set behavior. CI runs this
// package under -race, so it also vouches that buffering added no sharing
// between worker goroutines.
func TestStoreBufferMatchesInline(t *testing.T) {
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			opts := testOptions()
			camp := testCampaign()
			camp.Runs = 4
			camp.Scheme = sim.SWInc
			camp.RoundFP = app.UsesFP
			camp.Ignore = app.IgnoreSet()

			run := func(words int) *core.Report {
				t.Helper()
				c := camp
				c.StoreBufferWords = words
				rep, err := c.Check(app.Builder(opts))
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			inline := run(-1)  // negative disables the buffer
			buffered := run(0) // 0 = auto-sized buffer, the default

			if inline.Points() != buffered.Points() {
				t.Fatalf("point counts differ: inline %d, buffered %d", inline.Points(), buffered.Points())
			}
			var flushes uint64
			for i := range inline.Runs {
				ir, br := inline.Runs[i], buffered.Runs[i]
				if !reflect.DeepEqual(ir.Checkpoints, br.Checkpoints) {
					for j := range ir.Checkpoints {
						a, b := ir.Checkpoints[j], br.Checkpoints[j]
						if a.RawSH != b.RawSH || a.SH != b.SH {
							t.Fatalf("run %d checkpoint %d (%s): inline raw %s adj %s, buffered raw %s adj %s",
								i, j, a.Label, a.RawSH, a.SH, b.RawSH, b.SH)
						}
					}
					t.Fatalf("run %d: checkpoint records differ beyond hashes", i)
				}
				if ir.OutputHash != br.OutputHash || ir.OutputBytes != br.OutputBytes {
					t.Fatalf("run %d: output streams differ", i)
				}
				if ir.MHMStats.BufferFlushes != 0 {
					t.Errorf("run %d: inline campaign drained a store buffer", i)
				}
				flushes += br.MHMStats.BufferFlushes
				// Per-store accounting must not notice the buffer.
				if ir.MHMStats.HashedStores != br.MHMStats.HashedStores ||
					ir.MHMStats.SkippedStores != br.MHMStats.SkippedStores ||
					ir.MHMStats.RoundedStores != br.MHMStats.RoundedStores {
					t.Errorf("run %d: per-store stats diverged: inline %+v, buffered %+v",
						i, ir.MHMStats, br.MHMStats)
				}
			}
			if flushes == 0 {
				t.Error("buffered campaign never drained: the batch path was not exercised")
			}
			for i := range inline.Stats {
				if inline.Stats[i].DistKey() != buffered.Stats[i].DistKey() {
					t.Errorf("checkpoint %d: distributions differ: %s vs %s",
						i, inline.Stats[i].DistKey(), buffered.Stats[i].DistKey())
				}
			}
			if inline.Deterministic() != buffered.Deterministic() {
				t.Errorf("verdicts differ: inline %v, buffered %v", inline.Deterministic(), buffered.Deterministic())
			}
		})
	}
}
