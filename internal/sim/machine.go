package sim

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
	"instantcheck/internal/mem"
	"instantcheck/internal/mhm"
	"instantcheck/internal/sched"
)

// Program is a simulated parallel program. Setup runs once on an
// initialization thread before the workers start (allocating global state
// and reading input); Worker runs once per worker thread under the
// serializing scheduler. A Program instance is used for exactly one run;
// build a fresh instance per run so shared handles reset.
type Program interface {
	// Name identifies the program.
	Name() string
	// Threads returns the worker thread count.
	Threads() int
	// Setup initializes global state using the init thread.
	Setup(t *Thread)
	// Worker is the body of worker thread t.TID().
	Worker(t *Thread)
}

// Machine executes one run of a Program under one Config.
type Machine struct {
	cfg Config
	// Mem is the simulated address space.
	Mem *mem.Memory

	sch    *sched.Scheduler
	hasher ihash.Hasher

	// units[tid] is worker tid's MHM; initUnit belongs to the setup thread.
	units    []*mhm.Unit
	initUnit *mhm.Unit

	rounding fpround.Policy
	roundFP  bool

	// zeroSums caches Σ h(a,0) per page-bounded run for the traversal
	// scheme; travRuns is the reusable run-gathering scratch buffer.
	zeroSums *ihash.ZeroSumCache
	travRuns []travRun

	// pageSums caches per-page State-Hash contributions for dirty-page
	// delta checkpoints. deltaReady reports the cache mirrors memory with
	// the dirty bitmap cleared (set by the seeding full sweep, dropped by
	// InvalidateTraverseCache); deltaPages is the per-sweep scratch list
	// of dirty page numbers.
	pageSums   *ihash.PageSumCache
	deltaReady bool
	deltaPages []uint64

	checkpoints []Checkpoint
	counters    Counters

	outputs    map[int]*OutputStream
	outputData map[int][]byte

	running  bool
	finished bool
}

// NewMachine prepares a machine for one run.
func NewMachine(cfg Config) *Machine {
	if cfg.Threads <= 0 {
		panic("sim: Config.Threads must be positive")
	}
	h := cfg.Hasher
	if h == nil {
		h = ihash.Mix64{}
	}
	if cfg.RoundFP && !cfg.Rounding.Enabled() {
		cfg.Rounding = fpround.Default
	}
	m := &Machine{
		cfg:      cfg,
		Mem:      mem.New(),
		hasher:   h,
		rounding: cfg.Rounding,
		roundFP:  cfg.RoundFP,
	}
	m.counters.PerThread = make([]uint64, cfg.Threads)
	if cfg.Scheme.Incremental() {
		m.units = make([]*mhm.Unit, cfg.Threads)
		for i := range m.units {
			m.units[i] = m.newUnit()
		}
		m.initUnit = m.newUnit()
	}
	if words := cfg.storeBufferWords(); words > 0 {
		for _, u := range m.units {
			u.SetStoreBuffer(words)
		}
		m.initUnit.SetStoreBuffer(words)
	}
	if cfg.AddrLog != nil {
		log := cfg.AddrLog
		m.Mem.AddrHook = func(site string, seq, words int) (uint64, bool) {
			return log.Lookup(site, seq)
		}
	}
	return m
}

// storeBufferWords resolves the effective store-buffer capacity for this
// run: 0 means inline hashing. SWIncNonAtomic always hashes inline — the
// naive instrumentation it models performs the hash pair inside every store,
// and its deliberate §4.1 stale-read window must stay exactly as seeded.
func (cfg Config) storeBufferWords() int {
	if !cfg.Scheme.Incremental() || cfg.Scheme == SWIncNonAtomic {
		return 0
	}
	if cfg.StoreBufferWords < 0 || os.Getenv("ICHECK_STORE_BUFFER") == "off" {
		return 0
	}
	if cfg.StoreBufferWords == 0 {
		return StoreBufferAutoWords
	}
	return cfg.StoreBufferWords
}

func (m *Machine) newUnit() *mhm.Unit {
	u := mhm.New(m.hasher, m.rounding)
	if m.roundFP {
		u.StartFPRounding()
	}
	return u
}

// newThread builds an execution context, pre-resolving the pointers the
// per-operation accessors chase on every simulated instruction.
func (m *Machine) newThread(tid int, sch *sched.Scheduler, unit *mhm.Unit) *Thread {
	return &Thread{
		m: m, tid: tid, sch: sch,
		mm: m.Mem, ctr: &m.counters, ev: m.cfg.Events,
		unit: unit,
	}
}

// Config returns the run configuration.
func (m *Machine) Config() Config { return m.cfg }

// Scheduler returns the scheduler (nil before Run starts workers).
func (m *Machine) Scheduler() *sched.Scheduler { return m.sch }

// Run executes the program to completion and returns the run result. The
// final checkpoint ("end") is always captured, matching the paper's check at
// run end. Run may be called once per Machine.
func (m *Machine) Run(p Program) (*Result, error) {
	if m.finished {
		panic("sim: Machine reused across runs")
	}
	m.finished = true
	if p.Threads() != m.cfg.Threads {
		return nil, fmt.Errorf("sim: program %s wants %d threads, config has %d", p.Name(), p.Threads(), m.cfg.Threads)
	}
	if m.cfg.Env != nil {
		m.cfg.Env.BeginRun()
	}
	// Setup phase on the init thread: the allocations and stores it makes
	// are the program's fixed input state.
	init := m.newThread(-1, sched.Inert(), m.initUnit)
	p.Setup(init)
	m.counters.SetupInstr = init.instr
	m.counters.Instr += init.instr

	if m.cfg.Decider != nil {
		m.sch = sched.NewControlled(m.cfg.Threads, m.cfg.Decider)
	} else {
		m.sch = sched.New(m.cfg.Threads, m.cfg.ScheduleSeed, m.cfg.SwitchInterval)
	}
	threads := make([]*Thread, m.cfg.Threads)
	for i := range threads {
		var u *mhm.Unit
		if m.units != nil {
			u = m.units[i]
		}
		threads[i] = m.newThread(i, m.sch, u)
	}
	m.running = true
	err := m.sch.Run(func(tid int) {
		p.Worker(threads[tid])
		// Thread exit is a drain point: the worker's TH will next be read
		// at the end-of-run capture, and its buffered updates belong to
		// work this thread finished.
		if u := threads[tid].unit; u != nil {
			u.FlushStoreBuffer()
		}
	})
	m.running = false
	if err != nil {
		return nil, err
	}
	for i, t := range threads {
		m.counters.PerThread[i] = t.instr
		m.counters.Instr += t.instr
	}
	if err := m.capture("end"); err != nil {
		return nil, err
	}
	m.counters.FastLoadMisses, m.counters.FastStoreMisses = m.Mem.FastPathStats()
	m.counters.SchedOps = m.sch.Ops()
	res := &Result{
		Checkpoints:    m.checkpoints,
		Counters:       m.counters,
		FinalLiveWords: m.Mem.LiveWords(),
	}
	if len(m.outputs) > 0 {
		res.Outputs = make(map[int]OutputStream, len(m.outputs))
		for fd, s := range m.outputs {
			res.Outputs[fd] = *s
			res.OutputBytes += s.Bytes
		}
		if s, ok := m.outputs[Stdout]; ok {
			res.OutputHash = s.Hash
		}
		res.OutputData = m.outputData
	}
	if m.units != nil {
		for _, u := range m.units {
			res.MHMStats.Add(u.Stats())
		}
		res.MHMStats.Add(m.initUnit.Stats())
		// Mirror the store-buffer effectiveness numbers into the run
		// counters (off the hot path, once per run) so they flow to the
		// farm's metrics layer alongside the other observability counters.
		res.Counters.StoreBufferFlushes = res.MHMStats.BufferFlushes
		res.Counters.StoreBufferDrainedWords = res.MHMStats.DrainedWords
		res.Counters.StoreBufferCoalesced = res.MHMStats.CoalescedStores
		res.Counters.StoreBufferEvictions = res.MHMStats.ConflictEvictions
	}
	return res, nil
}

// NewMutex returns a named scheduler-aware mutex.
func (m *Machine) NewMutex(name string) *sched.Mutex { return sched.NewMutex(name) }

// NewCond returns a condition variable tied to mu.
func (m *Machine) NewCond(name string, mu *sched.Mutex) *sched.Cond {
	return sched.NewCond(name, mu)
}

// NewBarrier returns a pthread-style barrier for all worker threads. Every
// barrier episode is a determinism-checking point: when the last thread
// arrives — with all other participants blocked, so the shared state is
// quiescent — the machine captures a checkpoint (paper §2.3: "InstantCheck
// checks determinism at each program barrier and at run end").
func (m *Machine) NewBarrier(name string) *sched.Barrier {
	return m.NewBarrierN(name, m.cfg.Threads)
}

// NewBarrierN returns a checkpointing barrier for an explicit party count
// (for programs where only a subset of threads synchronizes).
func (m *Machine) NewBarrierN(name string, parties int) *sched.Barrier {
	b := sched.NewBarrier(name, parties)
	b.OnFull = func(episode, lastTID int) {
		if err := m.capture(name); err != nil {
			// The checkpoint hook asked to cancel (state pruning, replay
			// mismatch): unwind the run cleanly.
			m.sch.Abort(err)
		}
	}
	return b
}

// capture records a determinism-checking point and runs the checkpoint
// hook. It must run while the state is quiescent: on the last thread to
// arrive at a barrier, or after all threads have finished.
func (m *Machine) capture(label string) error {
	cp := Checkpoint{
		Ordinal:   len(m.checkpoints),
		Label:     label,
		LiveWords: m.Mem.LiveWords(),
	}
	m.counters.Checkpoints++
	m.counters.CheckpointWords += uint64(cp.LiveWords)
	if m.cfg.Scheme.Hashing() {
		var sh ihash.Digest
		if m.cfg.Scheme.Incremental() {
			sh = m.initUnit.TH()
			for _, u := range m.units {
				sh = sh.Combine(u.TH())
			}
		} else {
			sh = m.traverseHash()
		}
		cp.RawSH = sh
		adj, examined := m.cfg.Ignore.adjust(m, sh)
		cp.SH = adj
		m.counters.IgnoredWordChecks += examined
	}
	if m.cfg.SnapshotAt[cp.Ordinal] {
		cp.Snapshot = m.Mem.Snapshot()
	}
	m.checkpoints = append(m.checkpoints, cp)
	if m.cfg.Events != nil {
		m.cfg.Events.OnBarrier(cp.Ordinal)
	}
	if m.cfg.CheckpointHook != nil {
		return m.cfg.CheckpointHook(cp)
	}
	return nil
}

// travRun is one page-bounded run of live words queued for hashing, with
// its precomputed Σ h(a, 0) already attached so shard workers never touch
// the (non-thread-safe) zero-sum cache. hashRuns fills sum with the run's
// contribution Σ h(a,v) ⊖ Σ h(a,0).
type travRun struct {
	base  uint64
	words []uint64
	kind  mem.Kind
	zero  ihash.Digest
	sum   ihash.Digest
}

// parallelTraverseWords is the live-state size (in words) above which the
// auto setting shards the checkpoint sweep. Below it the fan-out overhead
// (goroutine wake-ups plus a barrier) outweighs the hashing itself.
const parallelTraverseWords = 1 << 15

// pageBytes is the memory engine's page extent; runs never cross it, so
// base/pageBytes identifies the page a run contributes to.
const pageBytes = mem.PageWords * mem.WordSize

// traverseHash computes the state hash by sweeping the static segment and
// the live-allocation table, as SW-InstantCheck_Tr does (§4.2). Each live
// word contributes h(a, v) ⊖ h(a, 0): its delta from the fixed zero-filled
// initial state, the same quantity the incremental schemes accumulate. FP
// words are rounded using the allocation table's type information.
//
// With Config.TraverseDelta in its default auto mode only the first sweep
// visits everything; it seeds a per-page contribution cache, and later
// checkpoints rehash just the pages dirtied since the previous one,
// patching the cached total by SH' = SH ⊖ C_old(p) ⊕ C_new(p). Because ⊕
// is an abelian group operation the patched digest is bit-identical to a
// full sequential sweep of the same state.
func (m *Machine) traverseHash() ihash.Digest {
	if m.zeroSums == nil {
		m.zeroSums = ihash.NewZeroSumCache(m.hasher)
	}
	if m.cfg.TraverseDelta != TraverseDeltaOff {
		if m.deltaReady {
			return m.traverseDelta()
		}
		return m.traverseFull(true)
	}
	return m.traverseFull(false)
}

// traverseFull sweeps every live run. Two fast paths apply. Runs whose
// backing page was never materialized are still all-zero, so their Σ h(a,v)
// equals their Σ h(a,0) and they cancel without being visited at all. For
// materialized runs the Σ h(a,0) term depends only on the address range, so
// it comes from a per-run cache (warmed at allocation time) instead of a
// per-word hash. When seed is set the sweep also rebuilds the per-page
// contribution cache and clears the dirty bitmap, arming delta mode for
// the following checkpoints.
func (m *Machine) traverseFull(seed bool) ihash.Digest {
	runs := m.travRuns[:0]
	total := 0
	m.Mem.TraverseRuns(func(base uint64, words []uint64, kind mem.Kind) {
		if mem.IsZeroRun(words) {
			return // Σ h(a,0) ⊖ Σ h(a,0) = 0: untouched runs cancel exactly
		}
		runs = append(runs, travRun{base: base, words: words, kind: kind, zero: m.zeroSums.Sum(base, len(words))})
		total += len(words)
	})
	m.travRuns = runs
	m.counters.TraverseRunsHashed += uint64(len(runs))
	m.counters.TraverseFullSweeps++
	m.hashRuns(runs, total)
	if !seed {
		var sh ihash.Digest
		for i := range runs {
			sh = sh.Combine(runs[i].sum)
		}
		return sh
	}
	if m.pageSums == nil {
		m.pageSums = ihash.NewPageSumCache()
	} else {
		m.pageSums.Reset()
	}
	for i := range runs {
		m.pageSums.Add(runs[i].base/pageBytes, runs[i].sum)
	}
	m.Mem.ClearDirty()
	m.deltaReady = true
	return m.pageSums.Total()
}

// traverseDelta rehashes only the pages dirtied since the last checkpoint
// and patches their cached contributions. A dirty page with no remaining
// live runs (or only zero ones) replaces its contribution with Zero — the
// §2.2 deletion algebra applied at page granularity, which is how freed
// blocks leave the hash without a full resweep.
func (m *Machine) traverseDelta() ihash.Digest {
	pages := m.deltaPages[:0]
	runs := m.travRuns[:0]
	total := 0
	m.Mem.TraverseDirtyRuns(
		func(pn uint64) { pages = append(pages, pn) },
		func(base uint64, words []uint64, kind mem.Kind) {
			if mem.IsZeroRun(words) {
				return // contributes 0 to its page sum either way
			}
			runs = append(runs, travRun{base: base, words: words, kind: kind, zero: m.zeroSums.Sum(base, len(words))})
			total += len(words)
		})
	m.deltaPages = pages
	m.travRuns = runs
	m.counters.TraverseRunsHashed += uint64(len(runs))
	m.counters.TraverseDeltaSweeps++
	m.counters.TraverseDirtyPages += uint64(len(pages))
	m.hashRuns(runs, total)
	// Pages and runs both arrive in ascending address order, so one linear
	// merge folds each page's run sums into its new contribution.
	ri := 0
	for _, pn := range pages {
		var sum ihash.Digest
		for ri < len(runs) && runs[ri].base/pageBytes == pn {
			sum = sum.Combine(runs[ri].sum)
			ri++
		}
		m.pageSums.Replace(pn, sum)
	}
	m.Mem.ClearDirty()
	m.counters.TraverseLivePages += uint64(m.pageSums.Len())
	return m.pageSums.Total()
}

// hashRuns fills every run's sum, sequentially or — when the gathered
// volume is large or Config.TraverseShards forces it — across goroutine
// shards. Each shard writes only its own runs' sum fields, so the result
// is identical to the sequential fill regardless of shard count.
func (m *Machine) hashRuns(runs []travRun, totalWords int) {
	shards := m.cfg.TraverseShards
	if shards == 0 && totalWords >= parallelTraverseWords {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards <= 1 || len(runs) < 2 {
		for i := range runs {
			runs[i].sum = m.hashRun(&runs[i])
		}
		return
	}
	if shards > len(runs) {
		shards = len(runs)
	}
	m.counters.TraverseShardedSweeps++
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(runs); i += shards {
				runs[i].sum = m.hashRun(&runs[i])
			}
		}(s)
	}
	wg.Wait()
}

// InvalidateTraverseCache forces the next traversal checkpoint to run a
// full (re-seeding) sweep. State surgery that bypasses the store path —
// snapshot restores, external memory pokes in tests — must call it, since
// the dirty bitmap cannot see such writes.
func (m *Machine) InvalidateTraverseCache() { m.deltaReady = false }

// hashRun returns Σ h(a, v) ⊖ Σ h(a, 0) for one run. It reads only
// immutable machine state (hasher, rounding policy) and the quiescent
// memory the run aliases, so shard workers may call it concurrently.
func (m *Machine) hashRun(r *travRun) ihash.Digest {
	h := m.hasher
	var d ihash.Digest
	if r.kind == mem.KindFloat && m.roundFP {
		rd := m.rounding
		if _, ok := h.(ihash.Mix64); ok {
			// Devirtualized: with the default hasher the per-word hash
			// inlines, leaving the round-off unit as the loop's only call.
			var mh ihash.Mix64
			for i, v := range r.words {
				d = d.Combine(mh.HashWord(r.base+uint64(i)*mem.WordSize, rd.RoundBits(v)))
			}
		} else {
			for i, v := range r.words {
				d = d.Combine(h.HashWord(r.base+uint64(i)*mem.WordSize, rd.RoundBits(v)))
			}
		}
	} else {
		d = ihash.BatchInsert(h, r.base, r.words)
	}
	return d.Subtract(r.zero)
}

// warmZeroSums precomputes the Σ h(a,0) cache entries for a block's
// page-bounded runs at allocation time, keeping that cost off the
// checkpoint path. Only the traversal scheme maintains the cache.
func (m *Machine) warmZeroSums(base uint64, words int) {
	if m.zeroSums == nil {
		if m.cfg.Scheme.Incremental() || !m.cfg.Scheme.Hashing() {
			return
		}
		m.zeroSums = ihash.NewZeroSumCache(m.hasher)
	}
	addr := base
	end := base + uint64(words)*mem.WordSize
	for addr < end {
		chunkEnd := (addr/pageBytes + 1) * pageBytes
		if chunkEnd > end {
			chunkEnd = end
		}
		m.zeroSums.Warm(addr, int((chunkEnd-addr)/mem.WordSize))
		addr = chunkEnd
	}
}

// SetFPRounding flips the FP round-off unit for every thread mid-run,
// implementing start_FP_rounding / stop_FP_rounding issued by the program.
func (m *Machine) SetFPRounding(on bool) {
	m.roundFP = on
	if m.units == nil {
		return
	}
	set := func(u *mhm.Unit) {
		if on {
			u.StartFPRounding()
		} else {
			u.StopFPRounding()
		}
	}
	for _, u := range m.units {
		set(u)
	}
	set(m.initUnit)
}

func (m *Machine) writeOutput(fd int, p []byte) {
	// FNV-1a over the stream in write order: InstantCheck's libc-write
	// interception hashes "the actually written bytes before the return
	// from the function" (§4.3), so ordering between unsynchronized
	// writers is visible — deliberately. Each descriptor carries its own
	// stream hash, as a full per-file implementation would.
	if m.outputs == nil {
		m.outputs = make(map[int]*OutputStream)
	}
	s := m.outputs[fd]
	if s == nil {
		s = &OutputStream{Hash: 14695981039346656037}
		m.outputs[fd] = s
	}
	const prime = 1099511628211
	h := s.Hash
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	s.Hash = h
	s.Bytes += uint64(len(p))
	m.counters.OutputBytes += uint64(len(p))
	if m.cfg.CaptureOutput {
		if m.outputData == nil {
			m.outputData = make(map[int][]byte)
		}
		m.outputData[fd] = append(m.outputData[fd], p...)
	}
}
