package explore

import (
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// commutativeProg is the Figure 1 pattern iterated: every round each
// thread adds a per-thread constant to a shared counter under a lock, then
// everyone meets at a barrier. All interleavings of a round commute, so
// every schedule reaches the same state at every barrier — the case where
// happens-before pruning fails (different lock orders have different
// happens-before) but state-hash pruning collapses the tree.
type commutativeProg struct {
	nt, rounds int
	g          uint64
	mu         *sched.Mutex
	bar        *sched.Barrier
}

func (p *commutativeProg) Name() string { return "commutative" }
func (p *commutativeProg) Threads() int { return p.nt }
func (p *commutativeProg) Setup(t *sim.Thread) {
	p.g = t.AllocStatic("static:G", 1, mem.KindWord)
	t.Store(p.g, 2)
	p.mu = t.Machine().NewMutex("G")
	p.bar = t.Machine().NewBarrier("round")
}
func (p *commutativeProg) Worker(t *sim.Thread) {
	l := uint64(7)
	if t.TID() == 1 {
		l = 3
	}
	for r := 0; r < p.rounds; r++ {
		t.Lock(p.mu)
		t.Store(p.g, t.Load(p.g)+l)
		t.Unlock(p.mu)
		t.BarrierWait(p.bar)
	}
}

// racyProg has a genuine last-writer-wins race each round: schedules reach
// different states, which pruning must never conflate.
type racyProg struct {
	nt, rounds int
	g          uint64
	bar        *sched.Barrier
}

func (p *racyProg) Name() string { return "racy" }
func (p *racyProg) Threads() int { return p.nt }
func (p *racyProg) Setup(t *sim.Thread) {
	p.g = t.AllocStatic("static:G", 1, mem.KindWord)
	p.bar = t.Machine().NewBarrier("round")
}
func (p *racyProg) Worker(t *sim.Thread) {
	for r := 0; r < p.rounds; r++ {
		t.Store(p.g, uint64(t.TID())+1) // last writer wins
		t.BarrierWait(p.bar)
	}
}

// TestPruningCollapsesCommutativeTree checks the §6.2 claim: for the
// Figure 1 pattern, state pruning explores far fewer schedules than
// exhaustive enumeration while reaching the same conclusion.
func TestPruningCollapsesCommutativeTree(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 3} }
	opts := Options{Threads: 2, PreemptEvery: 2, MaxRuns: 50000}

	full, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Exhausted {
		t.Fatalf("unpruned exploration did not exhaust the tree in %d runs", full.Runs)
	}
	if !full.Deterministic() {
		t.Fatalf("commutative program has %d final states", len(full.FinalStates))
	}

	opts.Prune = true
	pruned, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Exhausted {
		t.Fatal("pruned exploration did not exhaust")
	}
	if !pruned.Deterministic() {
		t.Fatal("pruning changed the verdict")
	}
	if pruned.Runs >= full.Runs {
		t.Errorf("pruning explored %d runs, unpruned %d — no savings", pruned.Runs, full.Runs)
	}
	if pruned.PrunedRuns == 0 {
		t.Error("no runs were pruned")
	}
	// Both modes exhaust the tree, so they must visit the same distinct
	// states — pruning skips re-visits, not states.
	if full.StatesSeen != pruned.StatesSeen {
		t.Errorf("StatesSeen drifted: %d unpruned vs %d pruned", full.StatesSeen, pruned.StatesSeen)
	}
	t.Logf("schedules: %d unpruned vs %d pruned (%d cut early)", full.Runs, pruned.Runs, pruned.PrunedRuns)
}

// TestPruningPreservesFinalStates checks soundness on a racy program: the
// set of distinct final states found must be identical with and without
// pruning.
func TestPruningPreservesFinalStates(t *testing.T) {
	build := func() sim.Program { return &racyProg{nt: 2, rounds: 2} }
	opts := Options{Threads: 2, PreemptEvery: 1, MaxRuns: 50000}

	full, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Prune = true
	pruned, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Exhausted || !pruned.Exhausted {
		t.Fatalf("not exhausted: full=%v pruned=%v (runs %d/%d)", full.Exhausted, pruned.Exhausted, full.Runs, pruned.Runs)
	}
	if len(full.FinalStates) < 2 {
		t.Fatalf("racy program should reach multiple final states, got %d", len(full.FinalStates))
	}
	for sh := range full.FinalStates {
		if _, ok := pruned.FinalStates[sh]; !ok {
			t.Errorf("pruning lost final state %s", sh)
		}
	}
	for sh := range pruned.FinalStates {
		if _, ok := full.FinalStates[sh]; !ok {
			t.Errorf("pruning invented final state %s", sh)
		}
	}
	if pruned.Runs > full.Runs {
		t.Errorf("pruning increased work: %d > %d", pruned.Runs, full.Runs)
	}
	if full.StatesSeen != pruned.StatesSeen {
		t.Errorf("StatesSeen drifted: %d unpruned vs %d pruned", full.StatesSeen, pruned.StatesSeen)
	}
}

// TestStalePrefixCountsReplayDivergence is the regression test for the
// silent-clamp bug: a seeded prefix recorded against a different decision
// tree must surface as a counted replay divergence, mark no states
// visited, and leave the rest of the search untouched.
func TestStalePrefixCountsReplayDivergence(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 2} }
	opts := Options{Threads: 2, PreemptEvery: 2, MaxRuns: 50000}

	base, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.ReplayDivergences != 0 {
		t.Fatalf("clean search reported %d replay divergences", base.ReplayDivergences)
	}

	opts.SeedPrefixes = [][]int{{99}} // no decision point has 100 options
	stale, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stale.ReplayDivergences != 1 {
		t.Fatalf("stale prefix produced %d replay divergences, want 1", stale.ReplayDivergences)
	}
	if stale.Runs != base.Runs+1 {
		t.Errorf("stale prefix changed the search: %d runs vs %d+1", stale.Runs, base.Runs)
	}
	if stale.StatesSeen != base.StatesSeen {
		t.Errorf("diverged run leaked states: %d vs %d", stale.StatesSeen, base.StatesSeen)
	}
	if stale.CompletedRuns != base.CompletedRuns {
		t.Errorf("diverged run counted as completed: %d vs %d", stale.CompletedRuns, base.CompletedRuns)
	}
	if !stale.Exhausted {
		t.Error("stale prefix prevented exhaustion")
	}
}

// TestSeedPrefixesExploreFirst checks valid seeded prefixes are honored:
// they run before the free search and do not disturb the final coverage.
func TestSeedPrefixesExploreFirst(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 2} }
	opts := Options{Threads: 2, PreemptEvery: 2, MaxRuns: 50000}
	base, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SeedPrefixes = [][]int{{0}, {1}}
	seeded, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.ReplayDivergences != 0 {
		t.Fatalf("valid prefixes reported %d divergences", seeded.ReplayDivergences)
	}
	if seeded.StatesSeen != base.StatesSeen {
		t.Errorf("seeded search saw %d states, free search %d", seeded.StatesSeen, base.StatesSeen)
	}
	if !seeded.Deterministic() {
		t.Error("verdict changed")
	}
}

// TestExhaustedBoundary pins the Exhausted flag at the budget edge: a
// budget of exactly the tree size exhausts, one less truncates.
func TestExhaustedBoundary(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 2} }
	full, err := Systematic(build, Options{Threads: 2, PreemptEvery: 2, MaxRuns: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Exhausted || full.Runs < 2 {
		t.Fatalf("need a small exhaustible tree, got exhausted=%v runs=%d", full.Exhausted, full.Runs)
	}

	exact, err := Systematic(build, Options{Threads: 2, PreemptEvery: 2, MaxRuns: full.Runs})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exhausted {
		t.Errorf("budget %d = tree size should exhaust", full.Runs)
	}
	if exact.Runs != full.Runs {
		t.Errorf("exact budget ran %d schedules, want %d", exact.Runs, full.Runs)
	}

	short, err := Systematic(build, Options{Threads: 2, PreemptEvery: 2, MaxRuns: full.Runs - 1})
	if err != nil {
		t.Fatal(err)
	}
	if short.Exhausted {
		t.Errorf("budget %d < tree size %d must not report Exhausted", full.Runs-1, full.Runs)
	}
	if short.Runs != full.Runs-1 {
		t.Errorf("truncated search ran %d schedules, budget %d", short.Runs, full.Runs-1)
	}
}

// TestNonPreemptiveExploration checks the blocking-points-only mode.
func TestNonPreemptiveExploration(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 3, rounds: 2} }
	res, err := Systematic(build, Options{Threads: 3, MaxRuns: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("non-preemptive tree should be small")
	}
	if !res.Deterministic() {
		t.Error("verdict")
	}
	if res.Runs < 2 {
		t.Errorf("only %d schedules — barrier arrival orders should branch", res.Runs)
	}
}

// TestMaxRunsBound checks the exploration budget is honored.
func TestMaxRunsBound(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 3, rounds: 4} }
	res, err := Systematic(build, Options{Threads: 3, PreemptEvery: 1, MaxRuns: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs > 25 {
		t.Errorf("ran %d schedules, budget 25", res.Runs)
	}
	if res.Exhausted {
		t.Error("this tree cannot be exhausted in 25 runs")
	}
}

// TestMaxDecisionsBound checks depth bounding (CHESS-style).
func TestMaxDecisionsBound(t *testing.T) {
	build := func() sim.Program { return &commutativeProg{nt: 2, rounds: 4} }
	shallow, err := Systematic(build, Options{Threads: 2, PreemptEvery: 1, MaxDecisions: 3, MaxRuns: 50000})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Systematic(build, Options{Threads: 2, PreemptEvery: 1, MaxDecisions: 8, MaxRuns: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !shallow.Exhausted || !deep.Exhausted {
		t.Fatal("bounded trees should exhaust")
	}
	if shallow.Runs >= deep.Runs {
		t.Errorf("depth bound did not shrink the tree: %d vs %d", shallow.Runs, deep.Runs)
	}
}

// TestOptionsValidation checks the guards.
func TestOptionsValidation(t *testing.T) {
	if _, err := Systematic(nil, Options{}); err == nil {
		t.Error("zero threads accepted")
	}
}
