package sched

import (
	"math/rand"
	"sort"
)

// PCT implements probabilistic concurrency testing (Burckhardt et al.,
// ASPLOS 2010) as a Decider: every thread gets a random priority, the
// highest-priority runnable thread always runs, and d priority-change
// points — operation ordinals drawn uniformly over the run's operation
// budget — each demote the running thread below every initial priority.
// For a bug of depth d the schedule triggers it with probability >=
// 1/(n*k^(d-1)) per run, which for the ordering bugs this repository seeds
// is a far better per-run hit rate than uniform random switching.
//
// PCT assumes switch points are yields or blocking operations; the
// workload kernels here also contain hand-coded spin loops (sense
// barriers, flag waits), which strict priority scheduling would livelock:
// the spinning thread stays highest-priority forever while the thread that
// would satisfy it never runs. The decider therefore re-arms a bounded
// spin guard whenever no change point is near: a thread observed running
// alone across consecutive guard windows is demoted like at a change
// point, which preserves liveness and costs at most schedule noise.
type PCT struct {
	rng  *rand.Rand
	prio []int // per-tid priority, higher runs first; always distinct
	// change holds the d priority-change operation ordinals, sorted;
	// next indexes the first one not yet fired.
	change []uint64
	next   int
	ops    uint64 // operations consumed by completed budget windows
	budget int    // the window handed out by the last SwitchBudget call

	// Change points fire between SwitchBudget (which lands a window edge
	// on the ordinal) and the PickTid that follows it; pendingDemote
	// carries the intent across the two calls.
	pendingDemote bool
	minPrio       int // floor for demotions, decreases monotonically
	sameRuns      int // consecutive solo guard windows (spin detection)
}

// pctSpinGuard bounds how long a thread may run alone before the spin
// guard demotes it (in operations, as consecutive guard windows).
const (
	pctSpinGuardOps  = 4096
	pctSpinGuardTrip = 3
)

// NewPCT builds a PCT decider for n threads with d priority-change points
// spread over opBudget operations (the expected run length; estimates
// within a few x of the truth preserve PCT's guarantee in practice).
// Priorities and change points derive from seed alone.
func NewPCT(n, d int, opBudget uint64, seed int64) *PCT {
	if n <= 0 {
		panic("sched: PCT thread count must be positive")
	}
	if d < 0 {
		d = 0
	}
	if opBudget == 0 {
		opBudget = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &PCT{rng: rng, prio: rng.Perm(n)}
	for i := range p.prio {
		p.prio[i] += d // keep initial priorities above every demotion slot
	}
	p.change = make([]uint64, d)
	for i := range p.change {
		p.change[i] = 1 + uint64(rng.Int63n(int64(opBudget)))
	}
	sort.Slice(p.change, func(i, j int) bool { return p.change[i] < p.change[j] })
	return p
}

// SwitchBudget implements Decider: run until the next change point (or the
// spin guard, whichever is nearer), and note when a change point is due so
// the following PickTid performs the demotion.
func (p *PCT) SwitchBudget() int {
	p.ops += uint64(p.budget)
	if p.next < len(p.change) && p.ops >= p.change[p.next] {
		p.pendingDemote = true
		p.next++
	}
	b := uint64(pctSpinGuardOps)
	if p.next < len(p.change) {
		if d := p.change[p.next] - p.ops; d < b {
			b = d
		}
	}
	if b < 1 {
		b = 1
	}
	p.budget = int(b)
	return p.budget
}

// Pick implements Decider for completeness; the scheduler never calls it
// because PCT implements TidPicker.
func (p *PCT) Pick(n int) int { return 0 }

// PickTid implements TidPicker: demote cur if a change point just fired or
// the spin guard tripped, then run the highest-priority runnable thread.
func (p *PCT) PickTid(cur int, runnable []int) int {
	if p.pendingDemote && cur >= 0 {
		p.pendingDemote = false
		p.demote(cur)
	}
	best := p.argmax(runnable)
	// Spin guard: a thread that keeps winning every forced switch without
	// ever blocking is either spinning on a flag only a lower-priority
	// thread can set, or just compute-heavy; demoting it is correct either
	// way and unblocks the former.
	if best == cur && p.contains(runnable, cur) {
		if p.sameRuns++; p.sameRuns >= pctSpinGuardTrip {
			p.sameRuns = 0
			p.demote(cur)
			best = p.argmax(runnable)
		}
	} else {
		p.sameRuns = 0
	}
	return best
}

// demote moves tid below every other priority assigned so far.
func (p *PCT) demote(tid int) {
	p.minPrio--
	p.prio[tid] = p.minPrio
}

func (p *PCT) argmax(runnable []int) int {
	best := runnable[0]
	for _, tid := range runnable[1:] {
		if p.prio[tid] > p.prio[best] {
			best = tid
		}
	}
	return best
}

func (p *PCT) contains(runnable []int, tid int) bool {
	for _, t := range runnable {
		if t == tid {
			return true
		}
	}
	return false
}
