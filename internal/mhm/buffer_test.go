package mhm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
)

// pair makes a buffered unit and an inline reference unit with identical
// configuration; every equivalence test drives both with the same stream
// and compares digests at observation points.
func pair(words int) (buffered, inline *Unit) {
	buffered = New(nil, fpround.Default)
	buffered.SetStoreBuffer(words)
	inline = New(nil, fpround.Default)
	return buffered, inline
}

// TestBufferedEqualsInline is the core bit-identity property: any stream of
// stores, frees, explicit minus/plus pairs, save/restore cycles, hashing
// gates and rounding flips produces the same TH through the buffer as
// through per-store hashing — at every TH observation, not just the last.
func TestBufferedEqualsInline(t *testing.T) {
	f := func(seed int64, nOps uint8, words uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b, ref := pair(int(words)%64 + 1)
		// A small address pool makes coalescing, conflicts and elisions
		// all common; track each word's current value so old values chain
		// like real memory traffic (and occasionally break the chain).
		addrs := []uint64{0x10000, 0x10008, 0x10010, 0x10018}
		vals := make(map[uint64]uint64)
		var saved []struct {
			d    [2]uint64
			vals map[uint64]uint64
		}
		for i := 0; i < int(nOps)%96+8; i++ {
			a := addrs[rng.Intn(len(addrs))]
			fp := rng.Intn(2) == 0
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // store
				old, new := vals[a], rng.Uint64()
				if rng.Intn(8) == 0 {
					old = rng.Uint64() // torn chain: forces a conflict eviction
				}
				vals[a] = new
				b.OnStore(a, old, new, fp)
				ref.OnStore(a, old, new, fp)
			case 5: // free (erase to zero)
				b.OnFree(a, vals[a], fp)
				ref.OnFree(a, vals[a], fp)
				vals[a] = 0
			case 6: // rounding flip
				if b.Rounding() {
					b.StopFPRounding()
					ref.StopFPRounding()
				} else {
					b.StartFPRounding()
					ref.StartFPRounding()
				}
			case 7: // hashing gate
				if b.Hashing() {
					b.StopHashing()
					ref.StopHashing()
				} else {
					b.StartHashing()
					ref.StartHashing()
				}
			case 8: // save, maybe restore later
				bd, rd := b.SaveHash(), ref.SaveHash()
				if bd != rd {
					return false
				}
				snap := make(map[uint64]uint64, len(vals))
				for k, v := range vals {
					snap[k] = v
				}
				saved = append(saved, struct {
					d    [2]uint64
					vals map[uint64]uint64
				}{[2]uint64{uint64(bd), uint64(rd)}, snap})
			case 9: // restore the most recent save
				if n := len(saved); n > 0 {
					s := saved[n-1]
					saved = saved[:n-1]
					b.RestoreHash(ihash.Digest(s.d[0]))
					ref.RestoreHash(ihash.Digest(s.d[1]))
					vals = s.vals
				}
			}
		}
		return b.TH() == ref.TH()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDrainPoints walks every observable point and checks it leaves the
// buffer empty: TH, SaveHash, RestoreHash, StopHashing, both rounding
// flips, SetStoreBuffer and FlushStoreBuffer.
func TestDrainPoints(t *testing.T) {
	drains := []struct {
		name string
		obs  func(u *Unit)
	}{
		{"TH", func(u *Unit) { u.TH() }},
		{"SaveHash", func(u *Unit) { u.SaveHash() }},
		{"RestoreHash", func(u *Unit) { u.RestoreHash(ihash.Zero) }},
		{"StopHashing", func(u *Unit) { u.StopHashing() }},
		{"StartFPRounding", func(u *Unit) { u.StartFPRounding() }},
		{"StopFPRounding", func(u *Unit) { u.StopFPRounding() }},
		{"SetStoreBuffer", func(u *Unit) { u.SetStoreBuffer(32) }},
		{"FlushStoreBuffer", func(u *Unit) { u.FlushStoreBuffer() }},
	}
	for _, d := range drains {
		u := New(nil, fpround.Default)
		u.SetStoreBuffer(16)
		u.OnStore(0x10000, 0, 7, false)
		u.OnStore(0x10008, 0, 9, true)
		if u.PendingWords() != 2 {
			t.Fatalf("%s: pending = %d before drain, want 2", d.name, u.PendingWords())
		}
		d.obs(u)
		if u.PendingWords() != 0 {
			t.Errorf("%s left %d words buffered", d.name, u.PendingWords())
		}
		if u.Stats().BufferFlushes != 1 {
			t.Errorf("%s: flushes = %d, want 1", d.name, u.Stats().BufferFlushes)
		}
	}
}

// TestBufferFullDrains checks the capacity trigger: the limit-th distinct
// address forces a drain without any observation.
func TestBufferFullDrains(t *testing.T) {
	u := New(nil, fpround.Default)
	u.SetStoreBuffer(4)
	for i := 0; i < 3; i++ {
		u.OnStore(0x10000+uint64(i)*8, 0, uint64(i)+1, false)
	}
	if got := u.Stats().BufferFlushes; got != 0 {
		t.Fatalf("flushes = %d before capacity, want 0", got)
	}
	u.OnStore(0x20000, 0, 9, false)
	s := u.Stats()
	if s.BufferFlushes != 1 || s.DrainedWords != 4 {
		t.Errorf("flushes = %d drained = %d after capacity store, want 1/4", s.BufferFlushes, s.DrainedWords)
	}
	if u.PendingWords() != 0 {
		t.Errorf("pending = %d after capacity drain", u.PendingWords())
	}
}

// TestCoalescingTelescopes checks k chained stores to one address cost one
// drained pair, and that legacy per-store stats still count all k.
func TestCoalescingTelescopes(t *testing.T) {
	b, ref := pair(16)
	vals := []uint64{0, 3, 8, 1, 42}
	for i := 1; i < len(vals); i++ {
		b.OnStore(0x10000, vals[i-1], vals[i], false)
		ref.OnStore(0x10000, vals[i-1], vals[i], false)
	}
	if b.TH() != ref.TH() {
		t.Fatal("coalesced digest differs from inline")
	}
	s := b.Stats()
	if s.CoalescedStores != 3 || s.DrainedWords != 1 || s.ConflictEvictions != 0 {
		t.Errorf("coalesced/drained/evicted = %d/%d/%d, want 3/1/0",
			s.CoalescedStores, s.DrainedWords, s.ConflictEvictions)
	}
	if s.HashedStores != ref.Stats().HashedStores {
		t.Errorf("HashedStores diverged: buffered %d, inline %d", s.HashedStores, ref.Stats().HashedStores)
	}
}

// TestConflictEviction checks a broken telescoping chain (the incoming old
// value differs from the pending new one) emits the pending pair inline and
// stays bit-identical to unbatched hashing.
func TestConflictEviction(t *testing.T) {
	b, ref := pair(16)
	// Thread sees 5 where it last wrote 3: another thread's store landed
	// in between (that thread hashes its own 3→5 pair).
	stores := [][2]uint64{{0, 3}, {5, 9}}
	for _, s := range stores {
		b.OnStore(0x10000, s[0], s[1], false)
		ref.OnStore(0x10000, s[0], s[1], false)
	}
	if b.TH() != ref.TH() {
		t.Fatal("conflict path digest differs from inline")
	}
	s := b.Stats()
	if s.ConflictEvictions != 1 || s.CoalescedStores != 0 {
		t.Errorf("evictions/coalesced = %d/%d, want 1/0", s.ConflictEvictions, s.CoalescedStores)
	}
}

// TestElision checks a window whose stores net to no change drops without
// hashing: A→B→A coalesces to A→A, and a word freed inside its creation
// window (0→v then erase back to 0) costs zero hash work.
func TestElision(t *testing.T) {
	b, ref := pair(16)
	b.OnStore(0x10000, 7, 9, false)
	b.OnStore(0x10000, 9, 7, false)
	ref.OnStore(0x10000, 7, 9, false)
	ref.OnStore(0x10000, 9, 7, false)

	b.OnStore(0x10008, 0, 5, false) // word born...
	b.OnFree(0x10008, 5, false)     // ...and freed in one window
	ref.OnStore(0x10008, 0, 5, false)
	ref.OnFree(0x10008, 5, false)

	if b.TH() != ref.TH() {
		t.Fatal("elided digest differs from inline")
	}
	s := b.Stats()
	if s.ElidedWords != 2 || s.DrainedWords != 0 {
		t.Errorf("elided/drained = %d/%d, want 2/0", s.ElidedWords, s.DrainedWords)
	}
	if s.MinusOps != 1 || s.PlusOps != 1 {
		t.Errorf("free accounting: minus/plus = %d/%d, want 1/1", s.MinusOps, s.PlusOps)
	}
}

// TestFPKindFlip checks an address stored as an integer and restored as FP
// (a realloc changing a word's kind) keeps the two kinds in separate
// entries — the buffer keys on (addr, kind), so updates that would round
// differently never merge and no conflict eviction is needed. The FP entry
// here rounds to old == new and elides; the integer entry drains.
func TestFPKindFlip(t *testing.T) {
	b, ref := pair(16)
	b.StartFPRounding()
	ref.StartFPRounding()
	bits := uint64(0x3ff0000000000001) // 1.0 + ulp: rounding is lossy
	for _, u := range []*Unit{b, ref} {
		u.OnStore(0x10000, 0, bits, false)
		u.OnStore(0x10000, bits, bits, true) // same values, different kind
	}
	if b.TH() != ref.TH() {
		t.Fatal("kind-flip digest differs from inline")
	}
	s := b.Stats()
	if s.ConflictEvictions != 0 {
		t.Errorf("evictions = %d, want 0 (kinds occupy separate entries)", s.ConflictEvictions)
	}
	if s.DrainedWords != 1 || s.ElidedWords != 1 {
		t.Errorf("drained/elided = %d/%d, want 1/1 (fp entry rounds to old == new)",
			s.DrainedWords, s.ElidedWords)
	}
}

// TestRoundingModeAtDrain checks entries are rounded under the mode their
// stores ran under: flipping the mode drains first, so a store before the
// flip is hashed raw and one after is hashed rounded.
func TestRoundingModeAtDrain(t *testing.T) {
	b, ref := pair(16)
	bits := uint64(0x3ff0000000000001)
	for _, u := range []*Unit{b, ref} {
		u.OnStore(0x10000, 0, bits, true) // rounding off: raw bits
		u.StartFPRounding()               // drains the buffered unit
		u.OnStore(0x10008, 0, bits, true) // rounding on: rounded bits
	}
	if b.TH() != ref.TH() {
		t.Fatal("rounding-boundary digest differs from inline")
	}
	if got := b.Stats().RoundedStores; got != ref.Stats().RoundedStores {
		t.Errorf("RoundedStores diverged: buffered %d, inline %d", got, ref.Stats().RoundedStores)
	}
}

// TestSetStoreBufferDetaches checks words <= 0 drains and restores inline
// hashing.
func TestSetStoreBufferDetaches(t *testing.T) {
	u := New(nil, fpround.Default)
	u.SetStoreBuffer(16)
	u.OnStore(0x10000, 0, 7, false)
	u.SetStoreBuffer(0)
	if u.StoreBufferWords() != 0 {
		t.Fatal("buffer still attached")
	}
	if u.Stats().BufferFlushes != 1 {
		t.Fatal("detach did not drain the pending entry")
	}
	u.OnStore(0x10008, 0, 9, false)
	if u.Stats().DrainedWords != 1 {
		t.Errorf("inline store after detach was counted as drained")
	}
	ref := New(nil, fpround.Default)
	ref.OnStore(0x10000, 0, 7, false)
	ref.OnStore(0x10008, 0, 9, false)
	if u.TH() != ref.TH() {
		t.Error("detached unit digest differs from inline")
	}
}

// TestStatsDoesNotDrain pins that reading Stats is not an observation of
// TH: counters are inspectable mid-window without perturbing batching.
func TestStatsDoesNotDrain(t *testing.T) {
	u := New(nil, fpround.Default)
	u.SetStoreBuffer(16)
	u.OnStore(0x10000, 0, 7, false)
	_ = u.Stats()
	if u.PendingWords() != 1 {
		t.Error("Stats() drained the buffer")
	}
}
