package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "lu",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			p := &luProg{nt: o.threads(), nb: 22, bs: 16}
			if o.Small {
				p.nb, p.bs = 4, 4
			}
			return p
		},
	})
}

// luProg reproduces SPLASH-2's lu: blocked in-place LU factorization of a
// dense nb*bs × nb*bs matrix without pivoting (the matrix is made
// diagonally dominant). As in the original, the matrix is stored with
// each bs×bs block CONTIGUOUS in memory (the block-allocated layout the
// original uses for locality): block (bi,bj) occupies words
// [(bi·nb+bj)·bs², …), row-major within the block. A phase that updates
// a block therefore touches only that block's own pages, and blocks
// finished in earlier elimination steps are never written again.
//
// Each elimination step runs three phases — diagonal block
// factorization, perimeter panel update, interior trailing update — with
// block ownership statically partitioned, so all writes are disjoint and
// the factorization is bit-by-bit deterministic. Three barriers per step
// plus a final one give the 68 dynamic points of Table 1
// (22 steps × 3 + final + end). The panel and trailing updates are
// register-blocked, as the original's daxpy kernels are: each operand
// block is loaded once per block update and the bs³ multiply-adds run on
// the loaded copies, so the simulated access stream is O(bs²) per block
// while the arithmetic stays the exact textbook factorization.
type luProg struct {
	nt int
	nb int // blocks per dimension
	bs int // block size

	a     uint64 // nb×nb blocks, each bs×bs, block-contiguous
	norm  uint64 // final checksum word
	diag  barrier
	panel barrier
	inner barrier
	done  barrier
}

func (p *luProg) Name() string { return "lu" }

func (p *luProg) Threads() int { return p.nt }

func (p *luProg) n() int { return p.nb * p.bs }

// bat addresses element (i,j) of block (bi,bj) in the block-contiguous
// layout.
func (p *luProg) bat(bi, bj, i, j int) uint64 {
	return idx(p.a, ((bi*p.nb+bj)*p.bs+i)*p.bs+j)
}

// gat addresses global element (i,j), for code that walks the matrix in
// matrix coordinates (setup, checksum, tests).
func (p *luProg) gat(i, j int) uint64 {
	return p.bat(i/p.bs, j/p.bs, i%p.bs, j%p.bs)
}

func (p *luProg) Setup(t *sim.Thread) {
	n := p.n()
	p.a = t.AllocStatic("static:lu.a", n*n, mem.KindFloat)
	rng := newXorshift(11)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.unitFloat() - 0.5
			if i == j {
				v += float64(n) // diagonal dominance: no pivoting needed
			}
			t.StoreF(p.gat(i, j), v)
		}
	}
	p.norm = t.AllocStatic("static:lu.norm", 1, mem.KindFloat)
	p.diag = newBarrier(t, "lu.diag")
	p.panel = newBarrier(t, "lu.panel")
	p.inner = newBarrier(t, "lu.inner")
	p.done = newBarrier(t, "lu.done")
}

// blockOwner statically assigns block (bi, bj) to a thread, as SPLASH-2's
// 2-D scatter decomposition does.
func (p *luProg) blockOwner(bi, bj int) int { return (bi*p.nb + bj) % p.nt }

// loadBlock reads block (bi,bj) into a scratch buffer — the register
// blocking of the original's kernels (one pass over the operand, then
// arithmetic on the copies).
func (p *luProg) loadBlock(t *sim.Thread, bi, bj int, buf []float64) {
	for i := 0; i < p.bs; i++ {
		for j := 0; j < p.bs; j++ {
			buf[i*p.bs+j] = t.LoadF(p.bat(bi, bj, i, j))
		}
	}
}

// storeBlock writes the scratch buffer back to block (bi,bj).
func (p *luProg) storeBlock(t *sim.Thread, bi, bj int, buf []float64) {
	for i := 0; i < p.bs; i++ {
		for j := 0; j < p.bs; j++ {
			//icvet:ignore race 2-D scatter ownership: storeBlock only targets blocks blockOwner assigns to this thread, and phase barriers order cross-block reads
			t.StoreF(p.bat(bi, bj, i, j), buf[i*p.bs+j])
		}
	}
}

func (p *luProg) Worker(t *sim.Thread) {
	bs := p.bs
	d := make([]float64, bs*bs) // diagonal / target block scratch
	l := make([]float64, bs*bs) // left operand scratch
	u := make([]float64, bs*bs) // right operand scratch
	for k := 0; k < p.nb; k++ {
		// Phase 1: the diagonal block's owner factors it in place.
		if p.blockOwner(k, k) == t.TID() {
			p.loadBlock(t, k, k, d)
			for kk := 0; kk < bs; kk++ {
				piv := d[kk*bs+kk]
				for i := kk + 1; i < bs; i++ {
					lv := d[i*bs+kk] / piv
					d[i*bs+kk] = lv
					for j := kk + 1; j < bs; j++ {
						d[i*bs+j] -= lv * d[kk*bs+j]
					}
					t.Compute(2 * (bs - kk)) // the row's eliminations
				}
			}
			p.storeBlock(t, k, k, d)
		}
		p.diag.await(t)

		// Phase 2: update the perimeter panels against the diagonal block.
		p.loadBlock(t, k, k, d)
		for m := k + 1; m < p.nb; m++ {
			if p.blockOwner(k, m) == t.TID() {
				p.solveRowPanel(t, k, m, d, u)
			}
			if p.blockOwner(m, k) == t.TID() {
				p.solveColPanel(t, k, m, d, l)
			}
		}
		p.panel.await(t)

		// Phase 3: rank-bs update of the trailing submatrix. The L panel
		// block is reloaded once per block row, the U panel block once per
		// target block — the original's fetch-and-daxpy structure.
		for bi := k + 1; bi < p.nb; bi++ {
			loaded := false
			for bj := k + 1; bj < p.nb; bj++ {
				if p.blockOwner(bi, bj) != t.TID() {
					continue
				}
				if !loaded {
					p.loadBlock(t, bi, k, l)
					loaded = true
				}
				p.loadBlock(t, k, bj, u)
				p.updateInterior(t, k, bi, bj, l, u, d)
			}
		}
		p.inner.await(t)
	}
	// Final phase: thread 0 records the factor's trace as a checksum (a
	// pure function of the now-stable matrix), then everyone synchronizes
	// once more — the 67th barrier, giving Table 1's 68 points with "end".
	if t.TID() == 0 {
		sum := 0.0
		for i := 0; i < p.n(); i++ {
			sum += t.LoadF(p.gat(i, i))
		}
		t.StoreF(p.norm, sum)
	}
	p.done.await(t)
}

// solveRowPanel computes U(k,m) = L(k,k)^-1 * A(k,m) in place: the panel
// block is loaded, the unit-lower triangular solve runs on the copies,
// and the result is stored back.
func (p *luProg) solveRowPanel(t *sim.Thread, k, m int, d, u []float64) {
	bs := p.bs
	p.loadBlock(t, k, m, u)
	for kk := 0; kk < bs; kk++ {
		for i := kk + 1; i < bs; i++ {
			lv := d[i*bs+kk]
			for j := 0; j < bs; j++ {
				u[i*bs+j] -= lv * u[kk*bs+j]
			}
			t.Compute(2 * bs) // one saxpy row
		}
	}
	p.storeBlock(t, k, m, u)
}

// solveColPanel computes L(m,k) = A(m,k) * U(k,k)^-1 in place, the same
// way.
func (p *luProg) solveColPanel(t *sim.Thread, k, m int, d, l []float64) {
	bs := p.bs
	p.loadBlock(t, m, k, l)
	for kk := 0; kk < bs; kk++ {
		piv := d[kk*bs+kk]
		for i := 0; i < bs; i++ {
			s := l[i*bs+kk]
			for j := 0; j < kk; j++ {
				s -= l[i*bs+j] * d[j*bs+kk]
			}
			l[i*bs+kk] = s / piv
			t.Compute(2*kk + 2) // the dot product and the divide
		}
	}
	p.storeBlock(t, m, k, l)
}

// updateInterior computes A(bi,bj) -= L(bi,k) * U(k,bj) on the loaded
// operand copies — the exact rank-bs update, with the target block
// streamed through memory once.
func (p *luProg) updateInterior(t *sim.Thread, k, bi, bj int, l, u, tgt []float64) {
	bs := p.bs
	p.loadBlock(t, bi, bj, tgt)
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			s := tgt[i*bs+j]
			for kk := 0; kk < bs; kk++ {
				s -= l[i*bs+kk] * u[kk*bs+j]
			}
			tgt[i*bs+j] = s
			t.Compute(2 * bs) // the bs multiply-adds
		}
	}
	p.storeBlock(t, bi, bj, tgt)
}
