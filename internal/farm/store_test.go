package farm

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"instantcheck/internal/ihash"
	"instantcheck/internal/sim"
)

func testResult(base uint64, ncp int) *sim.Result {
	res := &sim.Result{Outputs: map[int]sim.OutputStream{1: {Hash: base ^ 0xabc, Bytes: 64}}, OutputBytes: 64}
	for i := 0; i < ncp; i++ {
		label := "b"
		if i == ncp-1 {
			label = "end"
		}
		res.Checkpoints = append(res.Checkpoints, sim.Checkpoint{
			Ordinal: i, Label: label, SH: ihash.Digest(base + uint64(i)),
		})
	}
	return res
}

// TestStoreRoundTrip checks that appended jobs and runs come back intact
// from a fresh Open of the same file.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "farm.log")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: "radix", Runs: 3, Threads: 4, Small: true}
	id := s.NextID()
	if id != "j000001" {
		t.Errorf("first id = %s", id)
	}
	if err := s.BeginJob(id, spec); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		if err := s.AppendRun(id, run, testResult(uint64(1000*run), 2+run)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EndJob(id, "done", ""); err != nil {
		t.Fatal(err)
	}
	before := s.Job(id)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after := s2.Job(id)
	if after == nil {
		t.Fatal("job lost on reload")
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("reload mismatch:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.Final != "done" || !reflect.DeepEqual(after.Spec, spec) {
		t.Errorf("final=%q spec=%+v", after.Final, after.Spec)
	}
	if got := after.CompletedRuns(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("completed runs %v", got)
	}
	if rl := after.Run(1); len(rl.Checkpoints) != 3 || rl.Checkpoints[0].SH != 1000 {
		t.Errorf("run 1 = %+v", rl)
	}
	// IDs continue after the stored maximum.
	if next := s2.NextID(); next != "j000002" {
		t.Errorf("next id after reload = %s", next)
	}
	// Reconstructed results carry the hash-level fields.
	res := after.Run(0).Result()
	if res.Outputs[1].Hash != 0xabc || res.OutputBytes != 64 {
		t.Errorf("output reconstruction: %+v", res.Outputs)
	}
}

// TestStoreCrashTolerance checks the two crash shapes: a truncated
// trailing line, and a run that started but never committed. Both are
// dropped on load; committed runs before them survive.
func TestStoreCrashTolerance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "farm.log")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id := s.NextID()
	if err := s.BeginJob(id, JobSpec{App: "fft"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRun(id, 0, testResult(10, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash artifacts: an uncommitted run attempt and a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("runstart " + string(id) + " 1\n")
	f.WriteString("cp " + string(id) + " 1 0 00000000000000ff \"b\"\n")
	f.WriteString("cp " + string(id) + " 1 1 00000000000")
	f.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	jl := s2.Job(id)
	if got := jl.CompletedRuns(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("completed runs after crash = %v", got)
	}
	if jl.Final != "" {
		t.Errorf("final = %q, want unfinished", jl.Final)
	}
	// The next attempt of run 1 commits cleanly over the partial one.
	if err := s2.AppendRun(id, 1, testResult(20, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	jl = s3.Job(id)
	if got := jl.CompletedRuns(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("completed runs after recommit = %v", got)
	}
	if rl := jl.Run(1); rl.Checkpoints[0].SH != 20 {
		t.Errorf("stale partial survived: %+v", rl.Checkpoints)
	}
}

// TestHashLogRoundTrip checks the interchange format: write, parse,
// compare — including labels with spaces and quotes.
func TestHashLogRoundTrip(t *testing.T) {
	lines := []HashLogLine{
		{Run: 0, Ordinal: 0, Label: `odd "label" with spaces`, SH: 0xdeadbeef},
		{Run: 0, Ordinal: 1, Label: "end", SH: 1},
		{Run: 1, Ordinal: 0, Label: "b", SH: 0xdeadbeef},
	}
	var sb strings.Builder
	if err := WriteHashLog(&sb, lines); err != nil {
		t.Fatal(err)
	}
	got, err := ParseHashLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, lines) {
		t.Errorf("roundtrip:\nin  %+v\nout %+v", lines, got)
	}
	if _, err := ParseHashLog(strings.NewReader("not a hash log\n")); err == nil {
		t.Error("garbage accepted")
	}
}

// TestCompareHashLogs checks equality, first-divergence location and the
// run bookkeeping of the §6.3 cross-host diff.
func TestCompareHashLogs(t *testing.T) {
	a := []HashLogLine{
		{Run: 0, Ordinal: 0, Label: "b", SH: 1}, {Run: 0, Ordinal: 1, Label: "end", SH: 2},
		{Run: 1, Ordinal: 0, Label: "b", SH: 1}, {Run: 1, Ordinal: 1, Label: "end", SH: 2},
	}
	if res := CompareHashLogs(a, a); !res.Equal || res.RunsCompared != 2 || res.First != nil {
		t.Errorf("self-compare: %+v", res)
	}
	b := append([]HashLogLine(nil), a...)
	b[3] = HashLogLine{Run: 1, Ordinal: 1, Label: "end", SH: 99}
	res := CompareHashLogs(a, b)
	if res.Equal || res.First == nil {
		t.Fatalf("divergence missed: %+v", res)
	}
	if res.First.Run != 1 || res.First.Ordinal != 1 || res.First.A != "0000000000000002" || res.First.B != "0000000000000063" {
		t.Errorf("first divergence = %+v", res.First)
	}
	if !reflect.DeepEqual(res.DifferingRuns, []int{1}) {
		t.Errorf("differing runs = %v", res.DifferingRuns)
	}
	// A log missing a run is unequal, still compares the common runs, and
	// names the missing run instead of silently matching the prefix.
	res = CompareHashLogs(a, a[:2])
	if res.Equal || res.RunsCompared != 1 || res.First == nil {
		t.Fatalf("missing-run compare: %+v", res)
	}
	if res.First.Run != 1 || res.First.B != missingSide || !reflect.DeepEqual(res.OnlyA, []int{1}) {
		t.Errorf("missing-run divergence = %+v only_a=%v", res.First, res.OnlyA)
	}
}
