package farm

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"instantcheck/internal/obs"
)

// scrapeQueueDepth reads checkfarm_queue_depth off a live /metrics scrape.
func scrapeQueueDepth(t *testing.T, c *Client) float64 {
	t.Helper()
	text, err := c.MetricsText(bg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return sampleValue(t, samples, "checkfarm_queue_depth", nil)
}

// TestQueueDepthGaugeAcrossRestart is the resume-accounting regression
// test: a daemon that Resume()s an unfinished job must report it on the
// queue-depth gauge exactly once — before the fix the gauge tracked the
// length of the internal pending slice, which drifts from job state.
// The test scrapes /metrics at every lifecycle step across a restart.
func TestQueueDepthGaugeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "farm.log")

	// Daemon 1 accepts a job but is never started, so the job stays queued
	// in the store when the daemon "dies".
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, Options{})
	hs := httptest.NewServer(srv.Handler())
	c := NewClient(hs.URL)
	job, err := srv.Submit(smokeSpec("radix", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	if d := scrapeQueueDepth(t, c); d != 1 {
		t.Errorf("queue_depth with one queued job = %v, want 1", d)
	}
	hs.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Daemon 2 on the same store: the gauge must show the restored job
	// exactly once after Resume, and return to zero once it finishes.
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(store2, Options{RunWorkers: 4})
	hs2 := httptest.NewServer(srv2.Handler())
	c2 := NewClient(hs2.URL)
	if d := scrapeQueueDepth(t, c2); d != 0 {
		t.Errorf("queue_depth before Resume = %v, want 0", d)
	}
	if n := srv2.Resume(); n != 1 {
		t.Fatalf("Resume re-queued %d jobs, want 1", n)
	}
	if d := scrapeQueueDepth(t, c2); d != 1 {
		t.Errorf("queue_depth after Resume = %v, want exactly 1", d)
	}
	if h, err := c2.Health(bg); err != nil || h.QueueDepth != 1 {
		t.Errorf("health queue depth after Resume = %+v (err %v), want 1", h, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	srv2.Start(ctx)
	t.Cleanup(func() {
		hs2.Close()
		cancel()
		srv2.Wait()
		store2.Close()
	})
	if st := waitDone(t, c2, job.ID).State; st != JobDone {
		t.Fatalf("resumed job state %s", st)
	}
	if d := scrapeQueueDepth(t, c2); d != 0 {
		t.Errorf("queue_depth after completion = %v, want 0", d)
	}
}

// TestQueueDepthGaugeCancelWhileQueued pins the overcount half of the old
// bug: a job canceled while queued stayed in the pending slice (workers
// skip it lazily), so the gauge kept counting a job that no longer waits.
func TestQueueDepthGaugeCancelWhileQueued(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "farm.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, Options{}) // never started: both jobs stay queued
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	j1, err := srv.Submit(smokeSpec("radix", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := srv.Submit(smokeSpec("lu", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	if d := scrapeQueueDepth(t, c); d != 2 {
		t.Fatalf("queue_depth with two queued jobs = %v, want 2", d)
	}
	if ok, err := c.Cancel(bg, j2.ID); err != nil || !ok {
		t.Fatalf("cancel queued job: ok=%v err=%v", ok, err)
	}
	if d := scrapeQueueDepth(t, c); d != 1 {
		t.Errorf("queue_depth after cancel = %v, want 1 (canceled job must leave the gauge immediately)", d)
	}
	if !srv.Cancel(j1.ID) {
		t.Fatal("cancel of first job reported false")
	}
	if d := scrapeQueueDepth(t, c); d != 0 {
		t.Errorf("queue_depth after canceling all = %v, want 0", d)
	}
	if h := srv.Health(); h.QueueDepth != 0 {
		t.Errorf("health queue depth = %d, want 0", h.QueueDepth)
	}
}
