package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "barnes",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassNondeterministic,
		Build: func(o Options) sim.Program {
			p := &barnesProg{nt: o.threads(), bodies: 96, steps: 5}
			if o.Small {
				p.bodies, p.steps = 32, 2
			}
			return p
		},
	})
}

// Quadtree cell layout (KindWord block; geometry in fixed point so the
// block kind stays uniform).
const (
	cellLoX   = 0
	cellLoY   = 1
	cellHiX   = 2 // lo + size, stored for fast walks
	cellSizeW = 3 // edge length (fixed point)
	cellLeaf  = 4
	cellOcc   = 5
	cellCount = 6 // order-dependent traversal counter (monopole weight)
	cellComX  = 7 // center-of-mass accumulators (fixed point), updated
	cellComY  = 8 // along every insertion path, as the original does
	cellChild = 9 // 4 child pointers: quadrants (x-half + 2*y-half)
	cellWords = 13

	// fxScale converts positions in [0,1) to fixed point.
	fxScale = 1 << 40
)

// barnesProg reproduces SPLASH-2's barnes: Barnes-Hut N-body simulation on
// a 2-D domain with a quadtree. Every step the threads build a shared
// quadtree by concurrent insertion under a tree lock: the per-cell
// traversal counters and the addresses cells land at depend on insertion
// order, so the tree, the multipole force approximations derived from it,
// and therefore the body coordinates are all schedule-dependent. The
// nondeterminism is real and persistent — barnes ends in different states
// in different runs (Table 1: NDet group, 18 dynamic points, the 2 setup
// barriers deterministic and the 16 later ones not; not deterministic at
// the end). The paper notes a Java version of barnes was made
// deterministic in DPJ; here, as there, the fix would be a deterministic
// tree-build order.
type barnesProg struct {
	nt     int
	bodies int
	steps  int

	posX, posY, velX, velY, accX, accY uint64 // per-body state
	root                               uint64 // root cell pointer
	bbox                               uint64 // bounding-box summary
	plantFlag                          uint64 // per-step plant-done flags
	nodeLock                           *sched.Mutex

	initBar, loadBar                barrier
	insertBar, forceBar, advanceBar barrier
}

func (p *barnesProg) Name() string { return "barnes" }

func (p *barnesProg) Threads() int { return p.nt }

func (p *barnesProg) Setup(t *sim.Thread) {
	n := p.bodies
	p.posX = t.AllocStatic("static:bn.posx", n, mem.KindFloat)
	p.posY = t.AllocStatic("static:bn.posy", n, mem.KindFloat)
	p.velX = t.AllocStatic("static:bn.velx", n, mem.KindFloat)
	p.velY = t.AllocStatic("static:bn.vely", n, mem.KindFloat)
	p.accX = t.AllocStatic("static:bn.accx", n, mem.KindFloat)
	p.accY = t.AllocStatic("static:bn.accy", n, mem.KindFloat)
	p.root = t.AllocStatic("static:bn.root", 1, mem.KindWord)
	p.bbox = t.AllocStatic("static:bn.bbox", 4, mem.KindFloat)
	p.plantFlag = t.AllocStatic("static:bn.plant", p.steps, mem.KindWord)
	rng := newXorshift(41)
	for i := 0; i < n; i++ {
		t.StoreF(idx(p.posX, i), rng.unitFloat())
		t.StoreF(idx(p.posY, i), rng.unitFloat())
		t.StoreF(idx(p.velX, i), 0.01*(rng.unitFloat()-0.5))
		t.StoreF(idx(p.velY, i), 0.01*(rng.unitFloat()-0.5))
	}
	p.nodeLock = t.Machine().NewMutex("bn.tree")
	p.initBar = newBarrier(t, "bn.init")
	p.loadBar = newBarrier(t, "bn.load")
	p.insertBar = newBarrier(t, "bn.insert")
	p.forceBar = newBarrier(t, "bn.force")
	p.advanceBar = newBarrier(t, "bn.advance")
}

// newCell allocates a quadtree cell with corner (lox, loy) and edge size.
func (p *barnesProg) newCell(t *sim.Thread, lox, loy, size uint64) uint64 {
	c := t.Malloc("barnes.cell", cellWords, mem.KindWord)
	t.Store(idx(c, cellLoX), lox)
	t.Store(idx(c, cellLoY), loy)
	t.Store(idx(c, cellHiX), lox+size)
	t.Store(idx(c, cellSizeW), size)
	t.Store(idx(c, cellLeaf), 1)
	t.Store(idx(c, cellOcc), ^uint64(0))
	return c
}

func (p *barnesProg) Worker(t *sim.Thread) {
	tid := t.TID()
	lo, hi := span(p.bodies, p.nt, tid)

	// Setup: the two deterministic checking points of Table 1.
	for i := lo; i < hi; i++ {
		t.StoreF(idx(p.accX, i), 0)
		t.StoreF(idx(p.accY, i), 0)
	}
	p.initBar.await(t)
	if tid == 0 {
		minX, maxX, minY, maxY := 1.0, 0.0, 1.0, 0.0
		for i := 0; i < p.bodies; i++ {
			x, y := t.LoadF(idx(p.posX, i)), t.LoadF(idx(p.posY, i))
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		t.StoreF(idx(p.bbox, 0), minX)
		t.StoreF(idx(p.bbox, 1), maxX)
		t.StoreF(idx(p.bbox, 2), minY)
		t.StoreF(idx(p.bbox, 3), maxY)
	}
	p.loadBar.await(t)

	for step := 0; step < p.steps; step++ {
		// Tree plant: thread 0 discards last step's tree and plants a
		// fresh root; the hand-coded flag (not a checkpoint) orders the
		// plant before the concurrent insertions.
		if tid == 0 {
			if old := t.Load(p.root); old != 0 {
				p.freeTree(t, old)
			}
			t.Store(p.root, p.newCell(t, 0, 0, fxScale))
			t.Store(idx(p.plantFlag, step), 1)
		} else {
			spinWaitFlag(t, idx(p.plantFlag, step))
		}

		// Phase 1: concurrent quadtree build. Each insertion is atomic
		// under the tree lock, but the insertion ORDER is the schedule —
		// and both the cells' traversal counters and the addresses the
		// cells are allocated at depend on that order.
		for i := lo; i < hi; i++ {
			p.insert(t, i)
		}
		p.insertBar.await(t)

		// Phase 2: forces from walking the (frozen) tree. Different
		// counter/shape outcomes give different approximations.
		for i := lo; i < hi; i++ {
			ax, ay := p.forceOn(t, i)
			t.StoreF(idx(p.accX, i), ax)
			t.StoreF(idx(p.accY, i), ay)
		}
		p.forceBar.await(t)

		// Phase 3: advance bodies (disjoint), reflecting at the walls.
		for i := lo; i < hi; i++ {
			p.advance(t, p.velX, p.posX, p.accX, i)
			p.advance(t, p.velY, p.posY, p.accY, i)
		}
		p.advanceBar.await(t)
	}
}

// advance integrates one coordinate of one body with damping and
// reflecting walls.
func (p *barnesProg) advance(t *sim.Thread, vel, pos, acc uint64, i int) {
	v := 0.95*t.LoadF(idx(vel, i)) + 0.01*t.LoadF(idx(acc, i))
	x := t.LoadF(idx(pos, i)) + 0.05*v
	if x < 0 {
		x = -x
	}
	if x >= 1 {
		x = 1.999999 - x
	}
	if x < 0 || x >= 1 {
		x = 0.5
	}
	t.Compute(8)
	t.StoreF(idx(vel, i), v)
	t.StoreF(idx(pos, i), x)
}

// quadrant returns the child index for fixed-point position (x, y) in a
// cell with corner (lox, loy) and edge size.
func quadrant(x, y, lox, loy, size uint64) int {
	q := 0
	if x >= lox+size/2 {
		q |= 1
	}
	if y >= loy+size/2 {
		q |= 2
	}
	return q
}

// childCorner returns child q's corner for a cell at (lox, loy) with edge
// size.
func childCorner(q int, lox, loy, size uint64) (uint64, uint64) {
	half := size / 2
	cx, cy := lox, loy
	if q&1 != 0 {
		cx += half
	}
	if q&2 != 0 {
		cy += half
	}
	return cx, cy
}

// insert adds body i to the quadtree, splitting leaves as needed. The
// whole operation holds the tree lock (the original locks per cell; one
// lock keeps the kernel simple without changing the order-dependence).
func (p *barnesProg) insert(t *sim.Thread, i int) {
	x := uint64(t.LoadF(idx(p.posX, i)) * fxScale)
	y := uint64(t.LoadF(idx(p.posY, i)) * fxScale)
	t.Lock(p.nodeLock)
	cur := t.Load(p.root)
	for {
		lox := t.Load(idx(cur, cellLoX))
		loy := t.Load(idx(cur, cellLoY))
		size := t.Load(idx(cur, cellSizeW))
		if t.Load(idx(cur, cellLeaf)) == 1 {
			occupant := t.Load(idx(cur, cellOcc))
			if occupant == ^uint64(0) {
				t.Store(idx(cur, cellOcc), uint64(i))
				break
			}
			if size <= 2 {
				// Fixed-point resolution exhausted (coincident bodies):
				// coalesce rather than splitting forever.
				t.Store(idx(cur, cellOcc), uint64(i))
				break
			}
			// Split: push the occupant down, convert to internal, retry.
			ox := uint64(t.LoadF(idx(p.posX, int(occupant))) * fxScale)
			oy := uint64(t.LoadF(idx(p.posY, int(occupant))) * fxScale)
			oq := quadrant(ox, oy, lox, loy, size)
			cx, cy := childCorner(oq, lox, loy, size)
			child := p.newCell(t, cx, cy, size/2)
			t.Store(idx(child, cellOcc), occupant)
			t.Compute(20) // bounds/COM updates along the split path
			t.Store(idx(cur, cellLeaf), 0)
			t.Store(idx(cur, cellOcc), ^uint64(0))
			t.Store(idx(cur, cellChild+oq), child)
			continue
		}
		// Internal: update the cell's mass count and center-of-mass
		// accumulators — their values depend on how many bodies passed
		// through after the cell was split, which depends on insertion
		// order — and descend, materializing the child lazily.
		t.Store(idx(cur, cellCount), t.Load(idx(cur, cellCount))+1)
		t.Store(idx(cur, cellComX), t.Load(idx(cur, cellComX))+x)
		t.Store(idx(cur, cellComY), t.Load(idx(cur, cellComY))+y)
		q := quadrant(x, y, lox, loy, size)
		child := t.Load(idx(cur, cellChild+q))
		if child == 0 {
			cx, cy := childCorner(q, lox, loy, size)
			child = p.newCell(t, cx, cy, size/2)
			t.Store(idx(cur, cellChild+q), child)
		}
		t.Compute(16) // descent arithmetic
		cur = child
	}
	t.Unlock(p.nodeLock)
}

// forceOn walks the quadtree with the Barnes-Hut opening criterion, using
// each internal cell's traversal counter as its monopole weight.
func (p *barnesProg) forceOn(t *sim.Thread, i int) (ax, ay float64) {
	x := t.LoadF(idx(p.posX, i))
	y := t.LoadF(idx(p.posY, i))
	stack := []uint64{t.Load(p.root)} // thread-private walk stack
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == 0 {
			continue
		}
		if t.Load(idx(cur, cellLeaf)) == 1 {
			occ := t.Load(idx(cur, cellOcc))
			if occ != ^uint64(0) && int(occ) != i {
				dx := t.LoadF(idx(p.posX, int(occ))) - x
				dy := t.LoadF(idx(p.posY, int(occ))) - y
				r2 := dx*dx + dy*dy + 0.01
				ax += dx / r2
				ay += dy / r2
				t.Compute(30) // the pairwise kernel
			}
			continue
		}
		lox := float64(t.Load(idx(cur, cellLoX))) / fxScale
		loy := float64(t.Load(idx(cur, cellLoY))) / fxScale
		size := float64(t.Load(idx(cur, cellSizeW))) / fxScale
		cx := lox + size/2
		cy := loy + size/2
		dx := cx - x
		dy := cy - y
		dist2 := dx*dx + dy*dy
		if size*size < 0.64*dist2 {
			// Far enough: monopole at the accumulated center of mass.
			// Both the count and the COM are insertion-order-dependent,
			// so the approximation — and the force — inherit the
			// nondeterminism.
			m := float64(t.Load(idx(cur, cellCount)))
			if m > 0 {
				comX := float64(t.Load(idx(cur, cellComX))) / fxScale / m
				comY := float64(t.Load(idx(cur, cellComY))) / fxScale / m
				dx, dy = comX-x, comY-y
				dist2 = dx*dx + dy*dy
			}
			r2 := dist2 + 0.05
			ax += m * dx / r2
			ay += m * dy / r2
			t.Compute(40) // multipole evaluation
			continue
		}
		for q := 0; q < 4; q++ {
			stack = append(stack, t.Load(idx(cur, cellChild+q)))
		}
	}
	return ax, ay
}

// freeTree releases every node, erasing it from the hashed state.
func (p *barnesProg) freeTree(t *sim.Thread, cur uint64) {
	if cur == 0 {
		return
	}
	if t.Load(idx(cur, cellLeaf)) == 0 {
		for q := 0; q < 4; q++ {
			p.freeTree(t, t.Load(idx(cur, cellChild+q)))
		}
	}
	t.Free(cur)
}
