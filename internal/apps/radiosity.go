package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "radiosity",
		Source:        "splash2",
		UsesFP:        false,
		ExpectedClass: core.ClassNondeterministic,
		Build: func(o Options) sim.Program {
			p := &radiosityProg{nt: o.threads(), patches: 64, iters: 18}
			if o.Small {
				p.patches, p.iters = 24, 4
			}
			return p
		},
	})
}

// radiosityProg reproduces SPLASH-2's radiosity: hierarchical radiosity
// with dynamic task stealing. Each iteration seeds a shared work queue
// with patch-interaction tasks; threads steal tasks in schedule order,
// compute energy transfers in fixed-point integer arithmetic, and append
// refinement records to a shared log through a racy cursor. Both the
// completion order encoded in the log and the per-patch "last updated by
// task" markers are schedule-dependent from the very first iteration, so
// every checking point is nondeterministic (Table 1: 19 points, 0 det,
// not deterministic at the end).
type radiosityProg struct {
	nt      int
	patches int
	iters   int

	energy   uint64 // per-patch fixed-point radiosity
	stamp    uint64 // per-patch last-refinement stamp (order-dependent)
	taskCur  uint64 // shared task cursor for the iteration
	logCur   uint64 // shared refinement-log cursor
	logBuf   uint64 // refinement log entries
	logWords int

	queueLock *sched.Mutex
	logLock   *sched.Mutex
	patchLock []*sched.Mutex

	iter barrier
}

func (p *radiosityProg) Name() string { return "radiosity" }

func (p *radiosityProg) Threads() int { return p.nt }

func (p *radiosityProg) Setup(t *sim.Thread) {
	n := p.patches
	p.energy = t.AllocStatic("static:ra.energy", n, mem.KindWord)
	p.stamp = t.AllocStatic("static:ra.stamp", n, mem.KindWord)
	p.taskCur = t.AllocStatic("static:ra.taskCur", p.iters, mem.KindWord)
	p.logCur = t.AllocStatic("static:ra.logCur", 1, mem.KindWord)
	p.logWords = 2 * n
	p.logBuf = t.AllocStatic("static:ra.log", p.logWords, mem.KindWord)
	rng := newXorshift(61)
	for i := 0; i < n; i++ {
		t.Store(idx(p.energy, i), 1000+rng.next()%1000)
	}
	p.queueLock = t.Machine().NewMutex("ra.queue")
	p.logLock = t.Machine().NewMutex("ra.log")
	p.patchLock = make([]*sched.Mutex, n)
	for i := range p.patchLock {
		p.patchLock[i] = t.Machine().NewMutex("ra.patch")
	}
	p.iter = newBarrier(t, "ra.iter")
}

func (p *radiosityProg) Worker(t *sim.Thread) {
	tid := t.TID()
	n := p.patches
	for it := 0; it < p.iters; it++ {
		// Steal patch tasks until the queue drains. Each iteration has
		// its own cursor word (zero-initialized), so no reset phase is
		// needed. Which thread gets which task — and hence all orders
		// below — is the schedule.
		for {
			t.Lock(p.queueLock)
			task := int(t.Load(idx(p.taskCur, it)))
			if task < n {
				t.Store(idx(p.taskCur, it), uint64(task+1))
			}
			t.Unlock(p.queueLock)
			if task >= n {
				break
			}

			src := task
			dst := (task*7 + it) % n
			if dst == src {
				dst = (dst + 1) % n
			}
			// Transfer a quarter of the source's energy (fixed point).
			lo, hi := src, dst
			if lo > hi {
				lo, hi = hi, lo
			}
			t.Lock(p.patchLock[lo])
			t.Lock(p.patchLock[hi])
			e := t.Load(idx(p.energy, src))
			moved := e / 4
			t.Store(idx(p.energy, src), e-moved)
			d := t.Load(idx(p.energy, dst))
			t.Store(idx(p.energy, dst), d+moved)
			t.Compute(60) // form-factor evaluation
			// Order-dependent markers: who last refined the patch...
			t.Store(idx(p.stamp, dst), uint64(tid)<<32|uint64(task))
			t.Unlock(p.patchLock[hi])
			t.Unlock(p.patchLock[lo])

			// ...and the completion-order log.
			t.Lock(p.logLock)
			cur := t.Load(p.logCur)
			t.Store(p.logCur, cur+1)
			t.Unlock(p.logLock)
			slot := int(cur) % p.logWords
			t.Store(idx(p.logBuf, slot), uint64(task)<<16|uint64(tid))
		}
		p.iter.await(t)
	}
}
