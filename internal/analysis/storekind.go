package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
)

// StoreKind flags stores whose instruction kind contradicts the target
// block's allocation kind: t.Store into a KindFloat block, or t.StoreF into
// a KindWord block.
//
// The paper's FP round-off unit (§5) relies on the compiler knowing which
// stores are FP stores; the simulator enforces the same invariant at
// runtime with a checkKind panic. That panic only fires on schedules that
// execute the bad store — this analyzer makes the mismatch a build-time
// finding by tracking, per package, which variable each Malloc/AllocStatic
// result lands in and what kind literal the allocation declared.
//
// The tracking is intentionally syntactic: when a store's address
// expression mentions exactly one variable known to hold a block base, the
// store is checked against that block's kind. Addresses that mention none
// (bases hidden behind helper returns) or several are skipped.
var StoreKind = &Analyzer{
	Name: "storekind",
	Doc:  "Store into KindFloat blocks / StoreF into KindWord blocks",
	Run:  runStoreKind,
}

// blockInfo records what an allocation declared.
type blockInfo struct {
	isFloat  bool
	site     string // site label when literal, else ""
	conflict bool   // assigned blocks of both kinds: give up
}

func runStoreKind(pass *Pass) {
	pkg := pass.Pkg

	// Pass 1: map variables (and struct fields) to the kind of the block
	// they were assigned from Malloc/AllocStatic.
	kinds := make(map[types.Object]*blockInfo)
	record := func(target ast.Expr, call *ast.CallExpr) {
		isFloat, ok := allocKind(pkg, call)
		if !ok {
			return
		}
		obj := kindTarget(pkg, target)
		if obj == nil {
			return
		}
		site := ""
		if len(call.Args) >= 1 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					site = s
				}
			}
		}
		if prev, ok := kinds[obj]; ok {
			if prev.isFloat != isFloat {
				prev.conflict = true
			}
			return
		}
		kinds[obj] = &blockInfo{isFloat: isFloat, site: site}
	}
	inspectFiles(pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if name, ok := threadMethod(pkg, call); ok && (name == "Malloc" || name == "AllocStatic") {
						record(n.Lhs[i], call)
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) != len(n.Names) {
				return true
			}
			for i, rhs := range n.Values {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if name, ok := threadMethod(pkg, call); ok && (name == "Malloc" || name == "AllocStatic") {
						record(n.Names[i], call)
					}
				}
			}
		}
		return true
	})
	if len(kinds) == 0 {
		return
	}

	// Pass 2: check every store whose address names exactly one known block.
	inspectFiles(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := threadMethod(pkg, call)
		if !ok || (name != "Store" && name != "StoreF") || len(call.Args) != 2 {
			return true
		}
		info := addrBlock(pkg, call.Args[0], kinds)
		if info == nil || info.conflict {
			return true
		}
		isFPStore := name == "StoreF"
		if isFPStore == info.isFloat {
			return true
		}
		site := info.site
		if site == "" {
			site = "?"
		}
		if isFPStore {
			pass.Reportf(call.Pos(), "StoreF into KindWord block (site %q): FP stores must target KindFloat blocks — this store panics at runtime and its value would bypass FP rounding", site)
		} else {
			pass.Reportf(call.Pos(), "Store into KindFloat block (site %q): integer stores must target KindWord blocks — this store panics at runtime; use StoreF so the value is rounded before hashing", site)
		}
		return true
	})
}

// kindTarget resolves the assignment target of a Malloc/AllocStatic result
// to the object later address expressions will mention. For selector
// targets that is the *field* object — the same types.Object in every
// method of the struct — not the receiver, which is a distinct object per
// declaration and would never match at store sites.
func kindTarget(pkg *Package, target ast.Expr) types.Object {
	for {
		switch t := target.(type) {
		case *ast.ParenExpr:
			target = t.X
		case *ast.IndexExpr:
			// arr[i] = Malloc(...): key on arr — elements of one table
			// normally share a kind, and mixed kinds set conflict.
			target = t.X
		case *ast.StarExpr:
			target = t.X
		case *ast.SelectorExpr:
			return pkg.Info.Uses[t.Sel]
		case *ast.Ident:
			if obj := pkg.Info.Defs[t]; obj != nil {
				return obj
			}
			return pkg.Info.Uses[t]
		default:
			return nil
		}
	}
}

// addrBlock returns the block info when the address expression mentions
// exactly one variable known to hold an allocation base.
func addrBlock(pkg *Package, addr ast.Expr, kinds map[types.Object]*blockInfo) *blockInfo {
	var found *blockInfo
	count := 0
	ast.Inspect(addr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if info, ok := kinds[obj]; ok {
			count++
			found = info
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return found
}

// allocKind extracts the kind literal of a Malloc/AllocStatic call,
// resolving the mem.Kind constants through the argument's own type.
func allocKind(pkg *Package, call *ast.CallExpr) (isFloat, ok bool) {
	if len(call.Args) != 3 {
		return false, false
	}
	tv, ok := pkg.Info.Types[call.Args[2]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false, false
	}
	got, exact := constant.Int64Val(tv.Value)
	if !exact {
		return false, false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false, false
	}
	scope := named.Obj().Pkg().Scope()
	floatConst, ok := scope.Lookup("KindFloat").(*types.Const)
	if !ok {
		return false, false
	}
	want, exact := constant.Int64Val(floatConst.Val())
	if !exact {
		return false, false
	}
	return got == want, true
}
