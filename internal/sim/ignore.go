package sim

import (
	"sort"

	"instantcheck/internal/ihash"
	"instantcheck/internal/mem"
)

// IgnoreRule selects words to delete from the state hash: all blocks
// allocated at Site, restricted to the listed word Offsets (nil means the
// whole block). This is how the paper's advanced users exclude auxiliary
// structures that are legitimately nondeterministic — cholesky's free-task
// list, pbzip2's dangling pointer fields, sphinx3's scratch sites (§7.2).
type IgnoreRule struct {
	// Site is the allocation-site label the rule applies to.
	Site string
	// Offsets lists word offsets within each matching block; nil selects
	// every word of the block.
	Offsets []int
}

// siteSelector is the resolved union of all rules for one site.
type siteSelector struct {
	whole   bool
	offsets []int // sorted, unique; meaningful only if !whole
}

// IgnoreSet is a collection of ignore rules. Overlapping rules for the same
// site are unioned, so each word is deleted from the hash at most once.
type IgnoreSet struct {
	rules  []IgnoreRule
	bySite map[string]*siteSelector
}

// NewIgnoreSet builds an ignore set from rules.
func NewIgnoreSet(rules ...IgnoreRule) *IgnoreSet {
	s := &IgnoreSet{rules: rules, bySite: make(map[string]*siteSelector)}
	for _, r := range rules {
		sel := s.bySite[r.Site]
		if sel == nil {
			sel = &siteSelector{}
			s.bySite[r.Site] = sel
		}
		if r.Offsets == nil {
			sel.whole = true
			continue
		}
		sel.offsets = append(sel.offsets, r.Offsets...)
	}
	for _, sel := range s.bySite {
		if sel.whole {
			sel.offsets = nil
			continue
		}
		sort.Ints(sel.offsets)
		sel.offsets = dedupInts(sel.offsets)
	}
	return s
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Empty reports whether the set has no rules.
func (s *IgnoreSet) Empty() bool { return s == nil || len(s.rules) == 0 }

// Rules returns the rules the set was built from.
func (s *IgnoreSet) Rules() []IgnoreRule {
	if s == nil {
		return nil
	}
	return s.rules
}

// Sites returns the distinct sites mentioned by the rules, sorted.
func (s *IgnoreSet) Sites() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.bySite))
	for site := range s.bySite {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// adjust applies the §2.2 deletion to a state hash: for every selected word,
// SH = SH ⊕ h(a, v_initial) ⊖ h(a, v_current). Initial values are zero
// because InstantCheck zero-fills allocations. It returns the adjusted hash
// and the number of words examined (for the cost model). Values are rounded
// exactly as the hashing path would round them, so deletion cancels
// precisely.
func (s *IgnoreSet) adjust(m *Machine, sh ihash.Digest) (ihash.Digest, uint64) {
	if s.Empty() {
		return sh, 0
	}
	h := m.hasher
	var examined uint64
	apply := func(b *mem.Block, off int) {
		if off < 0 || off >= b.Words {
			return
		}
		addr := b.Base + uint64(off)*mem.WordSize
		cur := m.Mem.Peek(addr)
		if b.Kind == mem.KindFloat && m.roundFP {
			cur = m.rounding.RoundBits(cur)
		}
		examined++
		// ⊕ h(a, 0) ⊖ h(a, cur): restore the word to its fixed initial
		// (zero) value inside the hash.
		sh = sh.Combine(h.HashWord(addr, 0)).Subtract(h.HashWord(addr, cur))
	}
	m.Mem.TraverseBlocks(func(b *mem.Block) {
		sel := s.bySite[b.Site]
		if sel == nil {
			return
		}
		if sel.whole {
			for off := 0; off < b.Words; off++ {
				apply(b, off)
			}
			return
		}
		for _, off := range sel.offsets {
			apply(b, off)
		}
	})
	return sh, examined
}
