package mhm

import "instantcheck/internal/ihash"

// This file implements the per-thread store buffer: the software analogue of
// the write-buffer amortization a real MHM datapath gets for free (§3.2's
// multi-cluster design dispatches hash terms in arbitrary order and merges
// them later). Instead of paying two HashWord calls inside every store, the
// unit parks (addr, old, new) triples in a small open-addressed table and
// hashes them — through one devirtualized pass over the table — only when
// the Thread Hash becomes observable.
//
// Coalescing. Consecutive stores to the same address telescope: the pair
// ⊖h(a,A)⊕h(a,B) followed by ⊖h(a,B)⊕h(a,C) sums to ⊖h(a,A)⊕h(a,C), exactly,
// because the ⊕h(a,B) and ⊖h(a,B) terms are inverses in the mod-2^64 group.
// The buffer therefore keeps one entry per address, remembering the first
// old value and the latest new one — a word stored k times in a window costs
// one hash pair instead of k.
//
// The merge is legal only when the incoming store's old value equals the
// pending entry's new value; that is checked on every hit. A mismatch means
// the telescoping chain was broken between this thread's two stores —
// another thread wrote the word in between (its own pair carries the
// intermediate values), or an unhashed store ran while hashing was stopped.
// The conflict path emits the pending pair exactly as the inline scheme
// would have and restarts the entry, so the per-thread TH is bit-identical
// to unbatched hashing at every drain — no flushing at context switches is
// required for correctness, which is what lets the coalescing window span
// whole scheduler quanta.
//
// Rounding happens at drain (the round-off unit sits in front of the hash
// unit, §3.1): entries hold raw bit patterns, and every point that can
// change the rounding mode drains first, so the mode at drain time is the
// mode the stores ran under.

// bufSlot is one pending coalesced update, 24 bytes. key is the word
// address with the store's FP flag packed into bit 0 (word addresses are
// 8-aligned, so bits 0–2 are free); keying on (addr, kind) keeps integer
// and FP updates of a recycled word in separate entries, each drained under
// its own rounding treatment, exactly as the inline scheme hashes them.
// key 0 marks an empty slot; the simulator's address space starts well
// above 0, and a literal store to address 0 bypasses the buffer (see
// bufferStore).
type bufSlot struct {
	key uint64
	old uint64
	new uint64
}

const bufFPBit = 1

type storeBuffer struct {
	slots []bufSlot // open-addressed, power-of-two size, ≤50% load
	mask  uint64
	shift uint
	used  []uint32 // occupied slot indices in insertion order
	limit int      // entry count that forces a drain
}

// SetStoreBuffer attaches a store buffer holding up to words coalesced
// entries between drains (the Config.StoreBufferWords knob upstream). Any
// existing buffer is drained first; words <= 0 detaches the buffer and
// restores inline per-store hashing, the pre-buffer behavior.
func (u *Unit) SetStoreBuffer(words int) {
	u.drain()
	if words <= 0 {
		u.buf = nil
		return
	}
	k := uint(1)
	for 1<<k < words*2 {
		k++
	}
	u.buf = &storeBuffer{
		slots: make([]bufSlot, 1<<k),
		mask:  1<<k - 1,
		shift: 64 - k,
		used:  make([]uint32, 0, words),
		limit: words,
	}
}

// StoreBufferWords returns the attached buffer's capacity (0 when inline).
func (u *Unit) StoreBufferWords() int {
	if u.buf == nil {
		return 0
	}
	return u.buf.limit
}

// PendingWords returns the number of buffered updates not yet drained.
func (u *Unit) PendingWords() int {
	if u.buf == nil {
		return 0
	}
	return len(u.buf.used)
}

// FlushStoreBuffer drains every pending update into TH. The machine calls
// it at thread exit; all other drain points (TH reads, save/restore,
// start/stop_hashing, rounding flips, a full buffer) drain internally.
func (u *Unit) FlushStoreBuffer() { u.drain() }

// bufferStore parks one store in the buffer, coalescing per (addr, kind).
func (u *Unit) bufferStore(b *storeBuffer, addr, old, new uint64, isFP bool) {
	if addr == 0 {
		// Address 0 would collide with the empty-slot sentinel; hash it
		// inline. Simulated programs never store there (the address space
		// starts at the static base), so this guards only direct Unit use.
		u.applyPair(addr, old, new, isFP)
		return
	}
	key := addr
	if isFP {
		key |= bufFPBit
	}
	i := key * 0x9e3779b97f4a7c15 >> b.shift
	for {
		s := &b.slots[i]
		if s.key == key {
			if s.new == old {
				s.new = new // telescope: ⊕h(a,old) cancels ⊖h(a,old) exactly
				u.stats.CoalescedStores++
				return
			}
			// Chain broken (cross-thread write, or an unhashed store while
			// hashing was stopped): emit the pending pair exactly as the
			// inline path would have, then restart the entry.
			u.stats.ConflictEvictions++
			u.applyPair(addr, s.old, s.new, isFP)
			s.old, s.new = old, new
			return
		}
		if s.key == 0 {
			s.key, s.old, s.new = key, old, new
			b.used = append(b.used, uint32(i))
			if len(b.used) >= b.limit {
				u.drain()
			}
			return
		}
		i = (i + 1) & b.mask
	}
}

// applyPair performs one inline ⊖h(a,old)⊕h(a,new) update under the current
// rounding mode — the unbatched store path, shared by the conflict-eviction
// emit. Stats for the store were already counted at append time.
func (u *Unit) applyPair(addr, old, new uint64, isFP bool) {
	if isFP && u.rounding {
		old = u.policy.RoundBits(old)
		new = u.policy.RoundBits(new)
	}
	u.accumulate(u.hasher.HashWord(addr, old).Negate())
	u.accumulate(ihash.Digest(u.hasher.HashWord(addr, new)))
}

// drain hashes every pending entry in one pass over the table — the
// scattered-batch kernel run in place, with the location hash devirtualized
// for the default Mix64 (the same specialization ihash.WriteScattered and
// the WriteBatch/BatchInsert kernels apply; here the batch is consumed
// straight out of the slots, with no gather copy). The whole batch enters
// the datapath as a single dispatched term — legal, like every reordering
// here, because ⊕ is commutative and associative (§3.2).
func (u *Unit) drain() {
	b := u.buf
	if b == nil || len(b.used) == 0 {
		return
	}
	u.stats.BufferFlushes++
	round := u.rounding
	var drained, elided uint64
	var sum ihash.Digest
	if _, isMix := u.hasher.(ihash.Mix64); isMix {
		var mh ihash.Mix64
		for _, i := range b.used {
			s := &b.slots[i]
			old, new := s.old, s.new
			if s.key&bufFPBit != 0 && round {
				old = u.policy.RoundBits(old)
				new = u.policy.RoundBits(new)
			}
			if old == new {
				// The window's stores net to no change — a store-back of
				// the same value, a whole malloc→store→free lifetime whose
				// erase coalesced back to the zero it started from, or two
				// values the round-off unit collapsed. ⊖h⊕h cancels
				// exactly, so the entry drops without being hashed at all.
				elided++
			} else {
				a := s.key &^ bufFPBit
				sum = sum.Subtract(mh.HashWord(a, old)).Combine(mh.HashWord(a, new))
				drained++
			}
			s.key = 0
		}
	} else {
		for _, i := range b.used {
			s := &b.slots[i]
			old, new := s.old, s.new
			if s.key&bufFPBit != 0 && round {
				old = u.policy.RoundBits(old)
				new = u.policy.RoundBits(new)
			}
			if old == new {
				elided++
			} else {
				a := s.key &^ bufFPBit
				sum = sum.Subtract(u.hasher.HashWord(a, old)).Combine(u.hasher.HashWord(a, new))
				drained++
			}
			s.key = 0
		}
	}
	b.used = b.used[:0]
	u.stats.DrainedWords += drained
	u.stats.ElidedWords += elided
	u.accumulate(sum)
}

// OnStoreBatch applies a batch of scattered, already-rounded word updates:
// for each i, TH = TH ⊖ h(addrs[i], olds[i]) ⊕ h(addrs[i], news[i]). It is
// the gathered entry point to the same scattered-batch path drain runs over
// the buffer slots — the scattered sibling of the contiguous
// WriteBatch/BatchInsert kernels, for callers that hold their updates in
// parallel slices.
func (u *Unit) OnStoreBatch(addrs, olds, news []uint64) {
	u.stats.DrainedWords += uint64(len(addrs))
	u.accumulate(ihash.WriteScattered(u.hasher, addrs, olds, news))
}
