package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "cholesky",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassStructDeterministic,
		Ignore: func() *sim.IgnoreSet {
			// The nondeterministic structure Table 1 isolates: the
			// free-task node pool (linkage and stale payloads differ from
			// run to run) and the per-thread free-list heads.
			return sim.NewIgnoreSet(
				sim.IgnoreRule{Site: "cholesky.taskNode"},
				sim.IgnoreRule{Site: "static:ch.freeHeads"},
			)
		},
		Build: func(o Options) sim.Program {
			p := &choleskyProg{nt: o.threads(), n: 40, rawAlloc: o.RawCustomAlloc}
			if o.Small {
				p.n = 16
			}
			return p
		},
	})
}

const taskNodeWords = 4 // {nextPtr, fromColumn, toColumn, owner}

// choleskyProg reproduces SPLASH-2's cholesky: task-queue-driven
// right-looking factorization. Threads pull column tasks from a shared
// queue; when a column finalizes, its owner scatters that column's update
// into every later column under per-column locks, so each column receives
// its updates in schedule-dependent order — racy-order FP that needs
// rounding. Update descriptors are recycled through per-thread
// singly-linked free lists whose linkage, length and stale payloads are
// schedule-dependent — the nondeterministic data structure of §7.2 (field
// freeTask). The paper reports cholesky deterministic only after both FP
// rounding and deleting the free-list structure from the hash (Table 1:
// 4 points — 3 barriers + end).
//
// cholesky's third nondeterminism source is its custom memory allocator.
// The paper assumes the programmer ignores it by calling malloc inside the
// custom allocator; Options.RawCustomAlloc restores the original behavior
// (a shared pool handed out in schedule order), which stays
// nondeterministic even with the ignore set applied.
type choleskyProg struct {
	nt       int
	n        int
	rawAlloc bool

	a         uint64 // n×n matrix (dense stand-in for the sparse frontal work)
	queue     uint64 // shared task cursor
	updCount  uint64 // per-column count of applied updates
	done      uint64 // per-column finalized flags
	freeHeads uint64 // per-thread free-list head pointers
	pool      uint64 // raw custom-allocator pool (RawCustomAlloc only)
	poolNext  uint64 // raw pool cursor
	poolCap   int

	queueLock *sched.Mutex
	poolLock  *sched.Mutex
	colLocks  []*sched.Mutex

	ready, factored, solved barrier
}

func (p *choleskyProg) Name() string { return "cholesky" }

func (p *choleskyProg) Threads() int { return p.nt }

func (p *choleskyProg) at(i, j int) uint64 { return idx(p.a, i*p.n+j) }

func (p *choleskyProg) Setup(t *sim.Thread) {
	n := p.n
	p.a = t.AllocStatic("static:ch.a", n*n, mem.KindFloat)
	p.queue = t.AllocStatic("static:ch.queue", 1, mem.KindWord)
	p.updCount = t.AllocStatic("static:ch.updCount", n, mem.KindWord)
	p.done = t.AllocStatic("static:ch.done", n, mem.KindWord)
	p.freeHeads = t.AllocStatic("static:ch.freeHeads", p.nt, mem.KindWord)
	if p.rawAlloc {
		p.poolCap = (p.nt + 1) * n
		p.pool = t.AllocStatic("static:ch.pool", p.poolCap*taskNodeWords, mem.KindWord)
		p.poolNext = t.AllocStatic("static:ch.poolNext", 1, mem.KindWord)
	}
	rng := newXorshift(13)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.unitFloat() - 0.5
			if i == j {
				v = float64(n) + rng.unitFloat()
			}
			t.StoreF(p.at(i, j), v)
			if i != j {
				t.StoreF(p.at(j, i), v)
			}
		}
	}
	p.queueLock = t.Machine().NewMutex("ch.queue")
	p.poolLock = t.Machine().NewMutex("ch.pool")
	p.colLocks = make([]*sched.Mutex, n)
	for i := range p.colLocks {
		p.colLocks[i] = t.Machine().NewMutex("ch.col")
	}
	p.ready = newBarrier(t, "ch.ready")
	p.factored = newBarrier(t, "ch.factored")
	p.solved = newBarrier(t, "ch.solved")
}

// allocNode returns an update-descriptor address: from the thread's free
// list if possible, otherwise from malloc (fixed by replay) or from the
// racy custom pool, depending on configuration.
func (p *choleskyProg) allocNode(t *sim.Thread) uint64 {
	head := t.Load(idx(p.freeHeads, t.TID()))
	if head != 0 {
		next := t.Load(head) // node.next
		t.Store(idx(p.freeHeads, t.TID()), next)
		return head
	}
	if !p.rawAlloc {
		return t.Malloc("cholesky.taskNode", taskNodeWords, mem.KindWord)
	}
	// The original custom allocator: a shared pool handed out in request
	// order, which is schedule order — nondeterministic addresses.
	t.Lock(p.poolLock)
	slot := t.Load(p.poolNext)
	t.Store(p.poolNext, slot+1)
	t.Unlock(p.poolLock)
	assertf(int(slot) < p.poolCap, "cholesky: custom pool exhausted")
	return idx(p.pool, int(slot)*taskNodeWords)
}

// freeNode pushes a finished descriptor onto the thread's free list. Nodes
// are never returned to the allocator — exactly why their stale contents
// and linkage survive to the end of the run.
func (p *choleskyProg) freeNode(t *sim.Thread, node uint64) {
	tid := t.TID()
	head := t.Load(idx(p.freeHeads, tid))
	t.Store(node, head) // node.next = head
	t.Store(idx(p.freeHeads, tid), node)
}

func (p *choleskyProg) Worker(t *sim.Thread) {
	tid := t.TID()
	n := p.n
	p.ready.await(t)

	// Task loop: grab the next column, wait for all of its updates to
	// arrive, finalize it, then scatter its update into later columns.
	for {
		t.Lock(p.queueLock)
		col := int(t.Load(p.queue))
		if col < n {
			t.Store(p.queue, uint64(col+1))
		}
		t.Unlock(p.queueLock)
		if col >= n {
			break
		}

		// Wait until every previous column's update has been applied.
		for t.Load(idx(p.updCount, col)) < uint64(col) {
			t.Yield()
		}

		// Finalize column col: pivot with a numerical floor, mark done.
		t.Lock(p.colLocks[col])
		d := t.LoadF(p.at(col, col))
		if d < 1 {
			d = 1
		}
		t.StoreF(p.at(col, col), d)
		t.Unlock(p.colLocks[col])
		t.Store(idx(p.done, col), 1)

		// Scatter col's outer-product update into each later column j.
		// Columns receive these from different owners in racy order: the
		// FP-precision nondeterminism source. Each update carries a
		// descriptor node, all held until the task completes, so free
		// lists grow to schedule-dependent lengths.
		var held []uint64
		for j := col + 1; j < n; j++ {
			node := p.allocNode(t)
			t.Store(idx(node, 1), uint64(col))
			t.Store(idx(node, 2), uint64(j))
			t.Store(idx(node, 3), uint64(tid))
			held = append(held, node)

			ljc := t.LoadF(p.at(j, col)) / d
			t.Compute(12)
			t.Lock(p.colLocks[j])
			for i := j; i < n; i++ {
				v := t.LoadF(p.at(i, j)) - ljc*t.LoadF(p.at(i, col))
				t.Compute(20)
				t.StoreF(p.at(i, j), v)
			}
			c := t.Load(idx(p.updCount, j))
			t.Store(idx(p.updCount, j), c+1)
			t.Unlock(p.colLocks[j])
		}
		for _, node := range held {
			p.freeNode(t, node)
		}
	}
	p.factored.await(t)

	// Validation sweep: pure reads over this thread's row span.
	lo, hi := span(n, p.nt, tid)
	for i := lo; i < hi; i++ {
		assertf(t.Load(idx(p.done, i)) == 1, "cholesky: column %d not finalized", i)
	}
	p.solved.await(t)
}
