package mem

import "testing"

// TestFastPathStats pins the slow-path counting contract: misses are
// counted only when an access falls through the fast window, so the
// fast-window hit rate can be derived without any fast-path counting.
func TestFastPathStats(t *testing.T) {
	m := New()
	base := m.AllocStatic("g", 4, KindWord)

	if l, s := m.FastPathStats(); l != 0 || s != 0 {
		t.Fatalf("fresh memory stats = %d/%d", l, s)
	}
	// First store: no window yet, one store miss.
	m.Store(base, 1)
	if l, s := m.FastPathStats(); l != 0 || s != 1 {
		t.Fatalf("after first store: %d/%d, want 0/1", l, s)
	}
	// Subsequent accesses inside the window are hits: no new misses.
	for i := 0; i < 10; i++ {
		m.Store(base+8, uint64(i))
		if v := m.Load(base); v != 1 {
			t.Fatalf("load = %d", v)
		}
	}
	if l, s := m.FastPathStats(); l != 0 || s != 1 {
		t.Fatalf("window hits counted as misses: %d/%d, want 0/1", l, s)
	}
	// An access outside the window re-resolves: one more miss.
	other := m.AllocStatic("h", 4, KindWord)
	m.Store(other, 9)
	if _, s := m.FastPathStats(); s != 2 {
		t.Fatalf("store misses = %d, want 2", s)
	}
	// A load far from the store window misses the load path once.
	m.Store(base, 5) // move window back
	_ = m.Load(other)
	if l, _ := m.FastPathStats(); l != 1 {
		t.Fatalf("load misses = %d, want 1", l)
	}
}
